//! Sharded conservative-lookahead PDES engine.
//!
//! The simulator's node set is split into topology partitions ("shards"),
//! each owning a calendar queue, a packet pool, an RNG stream and its
//! nodes' completions/telemetry. Shards advance together through *windows*
//! `[tmin, tmin + L)` where `L` (the **lookahead**) is the minimum
//! propagation delay of any cross-shard link: an event processed at `t`
//! inside the window can only influence another shard at `t + L ≥ tmin +
//! L`, so every event strictly before the window end is safe to process
//! without seeing the other shards. Cross-shard emissions travel through
//! per-(src, dst) mailboxes and are delivered at window close, sorted by
//! `(at, src_shard, mail_key)` — a pure function of per-shard event order,
//! which is what makes the engine deterministic:
//!
//! * For a fixed shard count, traces are byte-identical across worker
//!   thread counts and repeated runs: worker threads only change *who*
//!   walks a shard through a window, never the per-shard event sequence,
//!   the mailbox contents, or the merge orders (completions by `(at,
//!   shard)`, probe records by shard index at each window close).
//! * With one shard the engine *is* the PR-3 serial engine: same queue,
//!   same pool, same RNG, same probe call sites — digests are
//!   byte-identical to the pre-sharding simulator.
//!
//! Control events ([`Event::Control`]) act on the whole simulator, so in
//! sharded mode they live in a separate serial queue and execute at a
//! global barrier *before* any node event at the same timestamp. Fault
//! planes and adversaries are consulted per-arrival under a mutex; their
//! observable state must be per-link (each link's arrivals are processed
//! by exactly one shard, in deterministic order) — the determinism matrix
//! test enforces this for the shipped planes.

use crate::endpoint::Completion;
use crate::equeue::EventQueue;
use crate::fault::{FaultPlane, FaultVerdict};
use crate::packet::{NodeId, Packet, PortId};
use crate::pool::{PacketPool, PktRef};
use crate::sim::{Event, Node, NodeCtx, Simulator};
use crate::stats::NetStats;
use crate::time::Nanos;
use crate::topology::Topology;
use crate::twheel::TimerWheel;
use dcp_rdma::headers::DcpTag;
use dcp_telemetry::{DropClass, Probe, ProbeEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};

/// "No pending event" sentinel timestamp.
pub(crate) const IDLE: Nanos = Nanos::MAX;

/// `DCP_SHARDS` (default 1), parsed once per process. `auto` picks a shard
/// count from the machine: sharding costs window-close barriers and mailbox
/// sorting, which only pay for themselves with real parallelism, so `auto`
/// resolves to 1 on single-threaded hosts (see EXPERIMENTS.md, the
/// `fig14_clos_1024_sh8` note) and to the worker-thread count (capped at 8
/// — partition quality degrades beyond pod boundaries) otherwise.
pub fn env_shards() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| match std::env::var("DCP_SHARDS") {
        Ok(v) if v.trim().eq_ignore_ascii_case("auto") => {
            let threads = env_threads();
            if threads < 2 {
                1
            } else {
                threads.min(8)
            }
        }
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("DCP_SHARDS={v:?} is not a positive integer or \"auto\"; using 1");
                1
            }
        },
        Err(_) => 1,
    })
}

/// `DCP_THREADS` (default: available parallelism), parsed once per process.
/// Shared with `dcp_workloads::sweep` as the worker count for both sweeps
/// and the sharded engine.
pub fn env_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let default = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        match std::env::var("DCP_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("DCP_THREADS={v:?} is not a positive integer; using default");
                    default()
                }
            },
            Err(_) => default(),
        }
    })
}

/// Derives shard `ix`'s RNG seed from the run seed. Shard 0 keeps the run
/// seed itself so a 1-shard simulator is bit-compatible with the serial
/// engine; the others get SplitMix64-scrambled streams.
pub(crate) fn shard_seed(seed: u64, ix: usize) -> u64 {
    if ix == 0 {
        return seed;
    }
    let mut z = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(ix as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A cross-shard event in transit. `key` is the source shard's emission
/// counter: sorting deliveries by `(at, src, key)` reproduces a total order
/// that depends only on per-shard event sequences, never on thread timing.
pub(crate) struct MailEntry {
    pub(crate) at: Nanos,
    pub(crate) src: u32,
    pub(crate) key: u64,
    pub(crate) ev: Event,
    /// The detached packet for `PacketArrive` mail; re-homed into the
    /// destination shard's pool at delivery (the `PktRef` in `ev` is dead).
    pub(crate) pkt: Option<Packet>,
}

/// Per-shard probe buffer: hot-path `record` calls append here and the
/// engine drains buffers into the real probe at each window close — merged
/// by timestamp with a stable shard-index tie-break (see
/// [`merge_probe_buffers`]), the same order whether a window ran serially
/// or on worker threads.
#[derive(Default)]
pub(crate) struct BufProbe {
    pub(crate) buf: Vec<(Nanos, ProbeEvent)>,
}

impl Probe for BufProbe {
    #[inline]
    fn record(&mut self, at: u64, ev: &ProbeEvent) {
        self.buf.push((at, *ev));
    }
}

/// One partition of the fabric: its own clock, queue, pool, RNG stream and
/// output buffers. With one shard this is exactly the serial engine's
/// state, field for field.
pub(crate) struct Shard {
    pub(crate) now: Nanos,
    pub(crate) seq: u64,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) pool: PacketPool,
    pub(crate) rng: StdRng,
    pub(crate) completions: VecDeque<Completion>,
    pub(crate) scratch: Vec<(Nanos, Event)>,
    pub(crate) events: u64,
    pub(crate) fault_stats: NetStats,
    pub(crate) fault_immune: HashSet<PktRef>,
    pub(crate) bufp: BufProbe,
    /// Emission counter for cross-shard mail keys.
    pub(crate) mail_seq: u64,
    /// Reused staging vector for sorting incoming mail at delivery.
    pub(crate) mail_scratch: Vec<MailEntry>,
    /// Endpoint timers, segregated from the calendar queue: a mostly-idle
    /// million-QP host keeps its armed RTOs here at O(1) arm/fire instead
    /// of carrying one calendar entry per idle QP. Shares the `seq`
    /// counter, so both structures merge into one `(at, seq)` total order.
    pub(crate) twheel: TimerWheel<Event>,
    /// High-water mark of `queue.len() + twheel.len()`.
    pub(crate) peak_pending: usize,
}

impl Shard {
    pub(crate) fn new(rng_seed: u64) -> Self {
        Shard {
            now: 0,
            seq: 0,
            queue: EventQueue::new(),
            pool: PacketPool::new(),
            rng: StdRng::seed_from_u64(rng_seed),
            completions: VecDeque::new(),
            scratch: Vec::new(),
            events: 0,
            fault_stats: NetStats::default(),
            fault_immune: HashSet::new(),
            bufp: BufProbe::default(),
            mail_seq: 0,
            mail_scratch: Vec::new(),
            twheel: TimerWheel::new(),
            peak_pending: 0,
        }
    }

    #[inline]
    pub(crate) fn schedule(&mut self, at: Nanos, ev: Event) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        self.seq += 1;
        match ev {
            Event::EndpointTimer { .. } => self.twheel.insert(at, self.seq, ev),
            _ => self.queue.insert(at, self.seq, ev),
        }
        self.peak_pending = self.peak_pending.max(self.queue.len() + self.twheel.len());
    }

    /// Pending events in this shard (calendar queue + timer wheel).
    #[inline]
    pub(crate) fn pending(&self) -> usize {
        self.queue.len() + self.twheel.len()
    }

    /// `(at, seq)` of the shard's earliest pending event across both
    /// structures. The shared `seq` counter makes the comparison exact.
    #[inline]
    pub(crate) fn next_key(&mut self) -> Option<(Nanos, u64)> {
        match (self.queue.next_key(), self.twheel.next_key()) {
            (Some(q), Some(t)) => Some(q.min(t)),
            (q, t) => q.or(t),
        }
    }

    #[inline]
    pub(crate) fn next_at(&mut self) -> Option<Nanos> {
        self.next_key().map(|(at, _)| at)
    }

    /// Pops the shard's globally earliest event — the merged order is
    /// byte-identical to the historical single-queue order because both
    /// structures key on the same `(at, seq)` space.
    #[inline]
    pub(crate) fn pop_next(&mut self) -> Option<(Nanos, u64, Event)> {
        match (self.queue.next_key(), self.twheel.next_key()) {
            (Some(q), Some(t)) => {
                if t < q {
                    self.twheel.pop()
                } else {
                    self.queue.pop()
                }
            }
            (Some(_), None) => self.queue.pop(),
            (None, Some(_)) => self.twheel.pop(),
            (None, None) => None,
        }
    }
}

/// Raw view over the simulator's node vector, handed to every worker.
///
/// # Safety
/// The partition maps each node to exactly one shard and a shard is walked
/// by exactly one worker per window, so concurrent `node_mut` calls are
/// disjoint **provided handlers never touch other nodes** — which is the
/// engine's standing invariant (see `sim` module docs: handlers only emit
/// `(time, Event)` pairs through `NodeCtx`). Cross-node effects (cable
/// flips, switch failure) are serial-only control-plane paths.
#[derive(Clone, Copy)]
pub(crate) struct NodesView {
    ptr: *mut Node,
    len: usize,
}

unsafe impl Send for NodesView {}
unsafe impl Sync for NodesView {}

impl NodesView {
    pub(crate) fn new(nodes: &mut [Node]) -> Self {
        NodesView { ptr: nodes.as_mut_ptr(), len: nodes.len() }
    }

    /// # Safety
    /// Caller must hold the only live reference to node `ix` (its shard's
    /// worker, or serial code).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn node_mut(&self, ix: usize) -> &mut Node {
        debug_assert!(ix < self.len);
        unsafe { &mut *self.ptr.add(ix) }
    }
}

/// Read-only engine context shared by all workers for one run segment.
#[derive(Clone, Copy)]
pub(crate) struct EngineShared<'a> {
    pub(crate) view: NodesView,
    pub(crate) node_shard: &'a [u32],
    pub(crate) n: usize,
    /// `n × n` mailbox matrix, indexed `src * n + dst`.
    pub(crate) mail: &'a [Mutex<Vec<MailEntry>>],
    pub(crate) plane: Option<&'a Mutex<Box<dyn FaultPlane>>>,
    pub(crate) probe_on: bool,
}

/// Runs shard `ix` through one window: every pending event strictly before
/// `w_end` (including ones the shard emits to itself inside the window).
pub(crate) fn run_window(shard: &mut Shard, ix: usize, sh: &EngineShared<'_>, w_end: Nanos) {
    while shard.next_at().is_some_and(|at| at < w_end) {
        process_next(shard, ix, sh);
    }
}

/// Pops and dispatches the shard's earliest event; returns its timestamp.
pub(crate) fn process_next(shard: &mut Shard, ix: usize, sh: &EngineShared<'_>) -> Nanos {
    let (at, _seq, ev) = shard.pop_next().expect("process_next on empty shard queue");
    debug_assert!(at >= shard.now);
    shard.now = at;
    shard.events += 1;
    let node_id = ev.node().expect("Control events never enter shard queues in sharded mode");
    if let Event::PacketArrive { node, port, pkt } = ev {
        if sh.plane.is_some() && fault_intercept(shard, ix, sh, node, port, pkt) {
            return at;
        }
    }
    dispatch(shard, ix, sh, node_id, ev);
    at
}

/// The event → handler mapping, identical to the serial engine's.
fn dispatch(shard: &mut Shard, ix: usize, sh: &EngineShared<'_>, node_id: NodeId, ev: Event) {
    with_shard_node(shard, ix, sh, node_id, |node, ctx| match (node, ev) {
        (Node::Host(h), Event::PacketArrive { pkt, .. }) => h.on_packet(pkt, ctx),
        (Node::Host(h), Event::PortFree { .. }) => h.on_port_free(ctx),
        (Node::Host(h), Event::Pfc { pause, .. }) => h.on_pfc(pause, ctx),
        (Node::Host(h), Event::EndpointTimer { slot, gen, token, .. }) => {
            h.on_timer(slot, gen, token, ctx)
        }
        (Node::Switch(sw), Event::PacketArrive { port, pkt, .. }) => sw.on_packet(port, pkt, ctx),
        (Node::Switch(sw), Event::PortFree { port, .. }) => sw.on_port_free(port, ctx),
        (Node::Switch(sw), Event::Pfc { port, pause, .. }) => sw.on_pfc(port, pause, ctx),
        (Node::Switch(_), Event::EndpointTimer { .. }) => {
            unreachable!("switches have no endpoints")
        }
        (_, Event::Control { .. }) => unreachable!("Control handled before dispatch"),
        (Node::Empty, _) => unreachable!("event for node under processing"),
    });
}

/// Shard-local `with_node`: runs `f` on a node this shard owns, with the
/// shard's pool/RNG/completions, then routes every emitted event — same
/// shard straight into the queue, cross-shard into a mailbox.
pub(crate) fn with_shard_node(
    shard: &mut Shard,
    ix: usize,
    sh: &EngineShared<'_>,
    id: NodeId,
    f: impl FnOnce(&mut Node, &mut NodeCtx),
) {
    debug_assert_eq!(sh.node_shard[id.0 as usize] as usize, ix, "node walked by wrong shard");
    // SAFETY: `id` belongs to shard `ix` (asserted above) and this shard is
    // walked by exactly one worker; handlers never touch other nodes.
    let slot = unsafe { sh.view.node_mut(id.0 as usize) };
    let mut node = std::mem::replace(slot, Node::Empty);
    let mut out = std::mem::take(&mut shard.scratch);
    {
        let mut ctx = NodeCtx {
            now: shard.now,
            pool: &mut shard.pool,
            rng: &mut shard.rng,
            out: &mut out,
            completions: &mut shard.completions,
            probe: sh.probe_on.then_some(&mut shard.bufp as &mut dyn Probe),
        };
        f(&mut node, &mut ctx);
    }
    // SAFETY: same slot as above; `f` has returned so no aliasing borrow.
    *unsafe { sh.view.node_mut(id.0 as usize) } = node;
    for (at, ev) in out.drain(..) {
        route_emission(shard, ix, sh, at, ev);
    }
    shard.scratch = out;
}

/// Routes one emitted event: same-shard events are scheduled directly,
/// cross-shard ones have their packet detached from the source pool and are
/// posted into the `(src, dst)` mailbox for delivery at window close.
fn route_emission(shard: &mut Shard, ix: usize, sh: &EngineShared<'_>, at: Nanos, ev: Event) {
    let node = ev.node().expect("node handlers never emit Control events");
    let dst = sh.node_shard[node.0 as usize] as usize;
    if dst == ix {
        shard.schedule(at, ev);
        return;
    }
    let pkt = match ev {
        Event::PacketArrive { pkt, .. } => Some(shard.pool.take(pkt)),
        _ => None,
    };
    shard.mail_seq += 1;
    let entry = MailEntry { at, src: ix as u32, key: shard.mail_seq, ev, pkt };
    sh.mail[ix * sh.n + dst].lock().unwrap().push(entry);
}

/// Drains every mailbox addressed to shard `ix`, sorts by `(at, src, key)`
/// and inserts with fresh destination sequence numbers. Called exactly once
/// per shard per window close, after all shards finished the window.
pub(crate) fn deliver_mail(shard: &mut Shard, ix: usize, sh: &EngineShared<'_>) {
    let mut incoming = std::mem::take(&mut shard.mail_scratch);
    debug_assert!(incoming.is_empty());
    for src in 0..sh.n {
        if src == ix {
            continue;
        }
        incoming.append(&mut sh.mail[src * sh.n + ix].lock().unwrap());
    }
    incoming.sort_unstable_by_key(|m| (m.at, m.src, m.key));
    for mut entry in incoming.drain(..) {
        if let Some(pkt) = entry.pkt.take() {
            let fresh = shard.pool.insert(pkt);
            match &mut entry.ev {
                Event::PacketArrive { pkt, .. } => *pkt = fresh,
                _ => unreachable!("mail with a packet is always PacketArrive"),
            }
        }
        shard.schedule(entry.at, entry.ev);
    }
    shard.mail_scratch = incoming;
}

/// Sharded twin of `Simulator::fault_intercept`: consults the shared plane
/// (under its mutex) about an arrival on a link this shard owns. Returns
/// `true` when the packet was consumed. Plane state must be per-link for
/// this to stay deterministic; see module docs.
fn fault_intercept(
    shard: &mut Shard,
    ix: usize,
    sh: &EngineShared<'_>,
    node: NodeId,
    port: PortId,
    pkt: PktRef,
) -> bool {
    if shard.fault_immune.remove(&pkt) {
        return false;
    }
    let verdict = match sh.plane {
        Some(plane) => plane.lock().unwrap().on_arrival(shard.now, node, port, &shard.pool[pkt]),
        None => FaultVerdict::Deliver,
    };
    match verdict {
        FaultVerdict::Deliver => false,
        FaultVerdict::Drop => {
            fault_discard(shard, sh, node, port, pkt);
            true
        }
        FaultVerdict::Duplicate { after } => {
            let copy = shard.pool.insert(shard.pool[pkt].clone());
            match shard.pool[copy].dcp_tag() {
                DcpTag::HeaderOnly => shard.fault_stats.dup_ho_injected += 1,
                _ if shard.pool[copy].is_data() => shard.fault_stats.dup_data_injected += 1,
                _ => {}
            }
            shard.fault_immune.insert(copy);
            let at = shard.now + after;
            shard.schedule(at, Event::PacketArrive { node, port, pkt: copy });
            false
        }
        FaultVerdict::Delay { by } | FaultVerdict::Reorder { by } => {
            shard.fault_immune.insert(pkt);
            let at = shard.now + by;
            shard.schedule(at, Event::PacketArrive { node, port, pkt });
            true
        }
        FaultVerdict::Corrupt => {
            // SAFETY: `node` belongs to this shard (its arrival is being
            // processed here); read-only peek at its config.
            let can_trim = matches!(
                unsafe { &*(sh.view.node_mut(node.0 as usize) as *const Node) },
                Node::Switch(s) if s.cfg.trimming
            ) && shard.pool[pkt].dcp_tag() == DcpTag::Data;
            if can_trim {
                with_shard_node(shard, ix, sh, node, |n, ctx| {
                    if let Node::Switch(sw) = n {
                        sw.on_corrupt(port, pkt, ctx);
                    }
                });
            } else {
                fault_discard(shard, sh, node, port, pkt);
            }
            true
        }
    }
}

/// Sharded twin of `Simulator::fault_discard`: books the wire loss on the
/// shard's stats and probe buffer, releases the handle.
fn fault_discard(
    shard: &mut Shard,
    sh: &EngineShared<'_>,
    node: NodeId,
    port: PortId,
    pkt: PktRef,
) {
    let (is_ho, is_data, flow, psn) = {
        let p = &shard.pool[pkt];
        (p.dcp_tag() == DcpTag::HeaderOnly, p.is_data(), p.flow.0, p.psn())
    };
    if is_ho {
        shard.fault_stats.ho_drops += 1;
    } else if is_data {
        shard.fault_stats.fault_drops += 1;
    } else {
        shard.fault_stats.ack_drops += 1;
    }
    if sh.probe_on {
        shard.bufp.record(
            shard.now,
            &ProbeEvent::Drop {
                node: node.0,
                port: port as u32,
                flow,
                psn,
                class: DropClass::Fault,
            },
        );
    }
    shard.pool.release(pkt);
}

/// Outcome of one serial engine micro-step (`step_sharded`).
pub(crate) enum StepOut {
    /// Processed one event at this timestamp.
    Event(Nanos),
    /// Closed a window (mail delivered, probes flushed); no event processed
    /// this call. A safe point to stop or hand the next windows to workers.
    Closed,
    /// Nothing pending anywhere.
    Idle,
    /// The next due thing is past the caller's limit; window state (if any)
    /// is kept open so a later call resumes exactly where this one stopped.
    Limited,
}

/// An in-progress serial window walk. Keeping partial windows open across
/// `step`/`run_until` calls makes window boundaries a pure function of
/// event content — independent of how a driver slices its time limits, and
/// therefore identical to the boundaries the parallel path computes.
#[derive(Clone, Copy)]
pub(crate) struct SerialWindow {
    pub(crate) w_end: Nanos,
    /// Next shard index to scan; reset to 0 when serial code inserts events
    /// mid-window (the insert may land inside an already-walked shard).
    pub(crate) cursor: usize,
}

impl Simulator {
    /// Splits the engine's disjoint parts for a run segment: the shard
    /// array and everything workers share.
    pub(crate) fn engine_core(&mut self) -> (&mut [Shard], EngineShared<'_>) {
        let n = self.shards.len();
        let probe_on = self.probe.is_some();
        let sh = EngineShared {
            view: NodesView::new(&mut self.nodes),
            node_shard: &self.node_shard,
            n,
            mail: &self.mail,
            plane: self.fault_plane.as_ref(),
            probe_on,
        };
        (&mut self.shards, sh)
    }

    /// Earliest pending node event across all shards, or [`IDLE`].
    pub(crate) fn shards_next_at(&mut self) -> Nanos {
        self.shards.iter_mut().filter_map(|s| s.next_at()).min().unwrap_or(IDLE)
    }

    /// Earliest pending control event, or [`IDLE`].
    pub(crate) fn next_control_at(&self) -> Nanos {
        self.controls.peek().map(|r| r.0 .0).unwrap_or(IDLE)
    }

    /// One micro-step of the sharded engine, processing at most one event
    /// (or one control, or one window close) at or before `limit`.
    pub(crate) fn step_sharded(&mut self, limit: Nanos) -> StepOut {
        if let Some(w) = self.serial_window {
            let (shards, sh) = self.engine_core();
            let mut cursor = w.cursor;
            while cursor < sh.n {
                match shards[cursor].next_at() {
                    Some(at) if at < w.w_end => {
                        if at > limit {
                            self.serial_window = Some(SerialWindow { w_end: w.w_end, cursor });
                            return StepOut::Limited;
                        }
                        let t = process_next(&mut shards[cursor], cursor, &sh);
                        self.serial_window = Some(SerialWindow { w_end: w.w_end, cursor });
                        self.clock = self.clock.max(t);
                        return StepOut::Event(t);
                    }
                    _ => cursor += 1,
                }
            }
            // Window exhausted: deliver mail everywhere, flush probes.
            for (ix, shard) in shards.iter_mut().enumerate().take(sh.n) {
                deliver_mail(shard, ix, &sh);
            }
            self.flush_probes_serial();
            self.serial_window = None;
            return StepOut::Closed;
        }
        let tmin = self.shards_next_at();
        let ctl = self.next_control_at();
        if tmin == IDLE && ctl == IDLE {
            return StepOut::Idle;
        }
        if ctl <= tmin {
            if ctl > limit {
                return StepOut::Limited;
            }
            let std::cmp::Reverse((at, _seq, token)) = self.controls.pop().expect("peeked control");
            self.ctl_events += 1;
            self.exec_control(at, token);
            return StepOut::Event(at);
        }
        if tmin > limit {
            return StepOut::Limited;
        }
        self.serial_window =
            Some(SerialWindow { w_end: tmin.saturating_add(self.lookahead).min(ctl), cursor: 0 });
        // Tail-call into the open-window branch to process the first event.
        self.step_sharded(limit)
    }

    /// Executes one control event: the fault plane acts on the full
    /// simulator (serial by construction — controls run between windows).
    pub(crate) fn exec_control(&mut self, at: Nanos, token: u64) {
        debug_assert!(at >= self.clock);
        self.clock = self.clock.max(at);
        if let Some(m) = self.fault_plane.take() {
            let mut plane = m.into_inner().unwrap();
            plane.on_control(token, self);
            self.fault_plane = Some(Mutex::new(plane));
        }
    }

    /// Drains every shard's probe buffer into the real probe in timestamp
    /// order (stable shard-index tie-break) — the canonical record order at
    /// a window close. Single-shard runs drain directly: their buffer is
    /// already time-ordered.
    pub(crate) fn flush_probes_serial(&mut self) {
        let Some(m) = self.probe.as_mut() else { return };
        let probe = &mut **m.get_mut().unwrap();
        if self.shards.len() == 1 {
            for (at, ev) in self.shards[0].bufp.buf.drain(..) {
                probe.record(at, &ev);
            }
            return;
        }
        for shard in &mut self.shards {
            self.probe_merge.append(&mut shard.bufp.buf);
        }
        merge_probe_buffers(&mut self.probe_merge, probe);
    }

    /// The sharded run loop: serial micro-steps, escaping to parallel
    /// window sessions whenever ≥1 full window fits under `limit` and
    /// worker threads are configured. Returns the clock if any event was
    /// processed. `stop_on_comps` stops at the first window close (or
    /// control boundary) with completions pending — the `advance` API.
    pub(crate) fn pump(&mut self, bound: Option<Nanos>, stop_on_comps: bool) -> Option<Nanos> {
        let limit = bound.unwrap_or(IDLE);
        let mut progressed = false;
        'outer: loop {
            // Go wide when no window is mid-walk and the next full window is
            // entirely at or below the limit.
            if self.workers > 1 && self.shards.len() > 1 && self.serial_window.is_none() {
                let tmin = self.shards_next_at();
                let ctl = self.next_control_at();
                if tmin != IDLE && tmin < ctl && tmin <= limit {
                    let w_end = tmin.saturating_add(self.lookahead).min(ctl);
                    if w_end <= limit.saturating_add(1) {
                        if self.parallel_session(limit, stop_on_comps) {
                            progressed = true;
                        }
                        if stop_on_comps && self.have_completions() {
                            break 'outer;
                        }
                        continue 'outer;
                    }
                }
            }
            match self.step_sharded(limit) {
                StepOut::Event(_) => progressed = true,
                StepOut::Closed => {
                    if stop_on_comps && self.have_completions() {
                        break 'outer;
                    }
                }
                StepOut::Idle | StepOut::Limited => break 'outer,
            }
        }
        progressed.then_some(self.clock)
    }

    pub(crate) fn have_completions(&self) -> bool {
        self.shards.iter().any(|s| !s.completions.is_empty())
    }

    /// Runs consecutive windows on worker threads until a stop condition:
    /// completions pending (when `stop_on_comps`), idle, a control due, or
    /// the next window not fitting under `limit`. Returns whether any event
    /// was processed.
    ///
    /// Protocol per window (all workers in lockstep):
    /// * **A** — walk owned shards through `[.., w_end)`; records land in
    ///   each shard's probe buffer. *barrier*
    /// * **B** — deliver owned shards' mail, swap probe buffers into the
    ///   per-shard flush slots, publish `next_at`/completion counts.
    ///   *barrier*
    /// * **C** — worker 0 drains the flush slots into the real probe in
    ///   shard index order; every worker independently computes the same
    ///   continue/stop decision from the published atomics.
    ///
    /// Worker 0's phase-C flush is ordered before any other worker's next
    /// phase-B slot swap by the next phase-A barrier, so slots are never
    /// touched concurrently.
    pub(crate) fn parallel_session(&mut self, limit: Nanos, stop_on_comps: bool) -> bool {
        let n = self.shards.len();
        let workers = self.workers.min(n);
        let ctl = self.next_control_at();
        let lookahead = self.lookahead;
        let tmin = self.shards_next_at();
        debug_assert!(tmin != IDLE && tmin < ctl && tmin <= limit);
        let w_end0 = tmin.saturating_add(lookahead).min(ctl);
        let events_before: u64 = self.shards.iter().map(|s| s.events).sum();

        let barrier = Barrier::new(workers);
        let next_at: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(IDLE)).collect();
        let comp_len: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();

        // Split shards into per-worker groups (round-robin by index).
        let probe = &self.probe;
        let slots: &[Mutex<Vec<(Nanos, ProbeEvent)>>] = &self.probe_slots;
        let sh = EngineShared {
            view: NodesView::new(&mut self.nodes),
            node_shard: &self.node_shard,
            n,
            mail: &self.mail,
            plane: self.fault_plane.as_ref(),
            probe_on: probe.is_some(),
        };
        let mut groups: Vec<Vec<(usize, &mut Shard)>> = (0..workers).map(|_| Vec::new()).collect();
        for (ix, shard) in self.shards.iter_mut().enumerate() {
            groups[ix % workers].push((ix, shard));
        }

        std::thread::scope(|scope| {
            let barrier = &barrier;
            let next_at = &next_at;
            let comp_len = &comp_len;
            for (wi, group) in groups.drain(1..).enumerate() {
                std::thread::Builder::new()
                    .name(format!("dcp-shard-{}", wi + 1))
                    .spawn_scoped(scope, move || {
                        session_worker(
                            group,
                            slots,
                            sh,
                            barrier,
                            next_at,
                            comp_len,
                            None,
                            w_end0,
                            limit,
                            ctl,
                            lookahead,
                            stop_on_comps,
                        );
                    })
                    .expect("spawn dcp-shard worker");
            }
            // This thread is worker 0 and owns the real-probe flush.
            session_worker(
                groups.remove(0),
                slots,
                sh,
                barrier,
                next_at,
                comp_len,
                probe.as_ref(),
                w_end0,
                limit,
                ctl,
                lookahead,
                stop_on_comps,
            );
        });

        let max_now = self.shards.iter().map(|s| s.now).max().unwrap_or(0);
        self.clock = self.clock.max(max_now);
        let events_after: u64 = self.shards.iter().map(|s| s.events).sum();
        events_after > events_before
    }
}

impl Simulator {
    /// Partitions the fabric into (up to) `nshards` shards along topology
    /// boundaries: hosts stay with their leaf, leaves group by pod (or
    /// stand alone), aggregation switches follow their pod, and
    /// spines/cores spread round-robin. The lookahead becomes the minimum
    /// cross-shard link delay.
    ///
    /// Must run after the topology is wired and before any traffic: the
    /// call is a no-op (returning `false`) if the simulator is already
    /// sharded, has processed or scheduled events, or if the cut would
    /// yield zero lookahead (a cross-shard link with no delay).
    pub fn partition(&mut self, topo: &Topology, nshards: usize) -> bool {
        if nshards <= 1 || self.shards.len() > 1 {
            return false;
        }
        {
            let s0 = &mut self.shards[0];
            if s0.events > 0 || s0.pending() > 0 || !s0.pool.is_empty() {
                return false;
            }
        }
        if !self.controls.is_empty() {
            return false;
        }

        // Build contiguous groups: pods when known, else single leaves;
        // leafless topologies (back-to-back) give each host its own group.
        let mut groups: Vec<Vec<u32>>;
        let mut group_hosts: Vec<usize>;
        if topo.leaves.is_empty() {
            groups = topo.hosts.iter().map(|h| vec![h.0]).collect();
            group_hosts = vec![1; groups.len()];
        } else {
            let ngroups = if topo.pod_of_leaf.is_empty() {
                topo.leaves.len()
            } else {
                topo.pod_of_leaf.iter().max().map(|m| m + 1).unwrap_or(0)
            };
            groups = vec![Vec::new(); ngroups];
            group_hosts = vec![0; ngroups];
            let mut leaf_group: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for (l, &leaf) in topo.leaves.iter().enumerate() {
                let gi = if topo.pod_of_leaf.is_empty() { l } else { topo.pod_of_leaf[l] };
                groups[gi].push(leaf.0);
                leaf_group.insert(leaf.0, gi);
            }
            for (a, &agg) in topo.aggs.iter().enumerate() {
                groups[topo.pod_of_agg[a]].push(agg.0);
            }
            for &h in &topo.hosts {
                let leaf = self.host(h).link.expect("host is wired to its leaf").to;
                let gi = leaf_group[&leaf.0];
                groups[gi].push(h.0);
                group_hosts[gi] += 1;
            }
        }
        let nshards_eff = nshards.min(groups.len());
        if nshards_eff <= 1 {
            return false;
        }

        // Greedy contiguous chunking balanced by host count; spines/cores
        // round-robin; anything outside the topology lands on shard 0.
        let total_hosts: usize = group_hosts.iter().sum();
        let mut assign = vec![0u32; self.nodes.len()];
        let mut shard = 0usize;
        let mut cum = 0usize;
        for (gi, members) in groups.iter().enumerate() {
            for &m in members {
                assign[m as usize] = shard as u32;
            }
            cum += group_hosts[gi];
            let next = shard + 1;
            let groups_left = groups.len() - gi - 1;
            if next < nshards_eff
                && groups_left >= nshards_eff - next
                && (cum * nshards_eff >= total_hosts * next || groups_left == nshards_eff - next)
            {
                shard = next;
            }
        }
        for (i, &s) in topo.spines.iter().enumerate() {
            assign[s.0 as usize] = (i % nshards_eff) as u32;
        }
        for (i, &c) in topo.cores.iter().enumerate() {
            assign[c.0 as usize] = (i % nshards_eff) as u32;
        }

        // Lookahead = min propagation delay over links that cross the cut.
        let mut la = IDLE;
        for (ix, node) in self.nodes.iter().enumerate() {
            let s = assign[ix];
            match node {
                Node::Host(h) => {
                    if let Some(l) = h.link {
                        if assign[l.to.0 as usize] != s {
                            la = la.min(l.delay);
                        }
                    }
                }
                Node::Switch(sw) => {
                    for p in &sw.ports {
                        if assign[p.link.to.0 as usize] != s {
                            la = la.min(p.link.delay);
                        }
                    }
                }
                Node::Empty => {}
            }
        }
        if la == 0 {
            // A zero-delay cross-shard link leaves no safe window.
            return false;
        }

        let seed = self.seed;
        for i in 1..nshards_eff {
            self.shards.push(Shard::new(shard_seed(seed, i)));
        }
        self.node_shard = assign;
        self.lookahead = la;
        self.mail = (0..nshards_eff * nshards_eff).map(|_| Mutex::new(Vec::new())).collect();
        self.probe_slots = (0..nshards_eff).map(|_| Mutex::new(Vec::new())).collect();
        self.workers = env_threads();
        true
    }

    /// Applies the `DCP_SHARDS` environment partitioning; topology builders
    /// call this as their last step. No-op after
    /// [`Simulator::disable_auto_partition`].
    pub fn auto_partition(&mut self, topo: &Topology) {
        if !self.auto_partition_enabled {
            return;
        }
        let n = env_shards();
        if n > 1 {
            self.partition(topo, n);
        }
    }

    /// Makes topology builders ignore `DCP_SHARDS`, so tests control
    /// sharding explicitly via [`Simulator::partition`]. Call before
    /// building the topology.
    pub fn disable_auto_partition(&mut self) {
        self.auto_partition_enabled = false;
    }

    /// Caps the worker threads used by parallel window sessions (default:
    /// `DCP_THREADS`). `1` keeps sharded runs single-threaded — same
    /// digests, no threads.
    pub fn set_workers(&mut self, n: usize) {
        self.workers = n.max(1);
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative-lookahead horizon (min cross-shard link delay);
    /// [`IDLE`]-valued when unsharded or when no link crosses the cut.
    pub fn lookahead_ns(&self) -> Nanos {
        self.lookahead
    }
}

/// Delivers a shard-major concatenation of per-shard probe buffers to the
/// real probe in timestamp order. A window's buffers are each internally
/// time-sorted but the serial walk (and the worker split) visits shards one
/// after another, so the concatenation interleaves out of order across
/// shards; the *stable* sort restores global `at` order while ties keep
/// shard-index-then-emission order — one canonical stream for every
/// shard/worker configuration. The staging vector is caller-owned and
/// reused window to window (drained empty here).
pub(crate) fn merge_probe_buffers(staged: &mut Vec<(Nanos, ProbeEvent)>, probe: &mut dyn Probe) {
    staged.sort_by_key(|e| e.0);
    for (at, ev) in staged.drain(..) {
        probe.record(at, &ev);
    }
}

/// One worker's window loop; see [`Simulator::parallel_session`] docs.
#[allow(clippy::too_many_arguments)]
fn session_worker(
    mut group: Vec<(usize, &mut Shard)>,
    slots: &[Mutex<Vec<(Nanos, ProbeEvent)>>],
    sh: EngineShared<'_>,
    barrier: &Barrier,
    next_at: &[AtomicU64],
    comp_len: &[AtomicUsize],
    flush: Option<&Mutex<Box<dyn Probe>>>,
    mut w_end: Nanos,
    limit: Nanos,
    ctl: Nanos,
    lookahead: Nanos,
    stop_on_comps: bool,
) {
    let mut staged: Vec<(Nanos, ProbeEvent)> = Vec::new();
    loop {
        // Phase A: walk every owned shard through the window.
        for (ix, shard) in group.iter_mut() {
            run_window(shard, *ix, &sh, w_end);
        }
        barrier.wait();
        // Phase B: deliver mail, stage probe buffers into the shared flush
        // slots, publish per-shard state. The per-slot mutex is uncontended
        // (one owner per slot; the flusher's drain is barrier-ordered before
        // the next swap), and Relaxed atomics suffice — barriers order them.
        for (ix, shard) in group.iter_mut() {
            deliver_mail(shard, *ix, &sh);
            if sh.probe_on {
                std::mem::swap(&mut shard.bufp.buf, &mut *slots[*ix].lock().unwrap());
            }
            next_at[*ix].store(shard.next_at().unwrap_or(IDLE), Ordering::Relaxed);
            comp_len[*ix].store(shard.completions.len(), Ordering::Relaxed);
        }
        barrier.wait();
        // Phase C: worker 0 concatenates the slots in shard index order and
        // merges them into the real probe by timestamp; then every worker
        // computes the identical continue/stop decision from the published
        // atomics.
        if let Some(m) = flush {
            if sh.probe_on {
                let mut probe = m.lock().unwrap();
                for slot in slots {
                    staged.append(&mut slot.lock().unwrap());
                }
                merge_probe_buffers(&mut staged, &mut **probe);
            }
        }
        let mut tmin = IDLE;
        for a in next_at {
            tmin = tmin.min(a.load(Ordering::Relaxed));
        }
        let comps = comp_len.iter().any(|c| c.load(Ordering::Relaxed) > 0);
        if (stop_on_comps && comps) || tmin == IDLE || tmin >= ctl || tmin > limit {
            return;
        }
        let next_end = tmin.saturating_add(lookahead).min(ctl);
        if next_end > limit.saturating_add(1) {
            return;
        }
        w_end = next_end;
    }
}
