//! The deterministic event loop.
//!
//! A calendar queue ([`crate::equeue::EventQueue`]) orders events by
//! `(time, sequence)`; the sequence tiebreak makes same-instant ordering
//! stable, so a given seed always produces an identical packet trace. Node
//! handlers never touch other nodes directly — they emit `(time, Event)`
//! pairs through [`NodeCtx`].

use crate::endpoint::{Completion, Endpoint};
use crate::equeue::EventQueue;
use crate::fault::{FaultPlane, FaultVerdict};
use crate::host::Host;
use crate::link::Link;
use crate::packet::{FlowId, NodeId, PortId};
use crate::pool::{PacketPool, PktRef};
use crate::stats::{NetStats, TransportStats};
use crate::switch::{Switch, SwitchConfig};
use crate::time::Nanos;
use dcp_rdma::headers::DcpTag;
use dcp_rdma::qp::WorkReqOp;
use dcp_telemetry::{DropClass, Probe, ProbeEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashSet, VecDeque};

/// Everything that can happen in the fabric.
///
/// Events are handle-sized and `Copy`: a packet rides through the calendar
/// queue as its 8-byte [`PktRef`] into the simulator's [`PacketPool`], so
/// bucket pushes and heapify swaps move ≤ 32 bytes
/// (`event_stays_handle_sized` locks this).
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A packet finished propagating and arrives at `node` on `port`.
    PacketArrive { node: NodeId, port: PortId, pkt: PktRef },
    /// `node`'s egress `port` finished serializing its current packet.
    PortFree { node: NodeId, port: PortId },
    /// A PFC PAUSE (`pause = true`) or RESUME frame arrives at `node`.
    Pfc { node: NodeId, port: PortId, pause: bool },
    /// A transport timer fires on endpoint `ep` of host `node`.
    EndpointTimer { node: NodeId, ep: usize, token: u64 },
    /// A scheduled control-plane action fires: the installed
    /// [`FaultPlane`] (if any) interprets `token` (e.g. "apply fault-plan
    /// entry #3 now"). Not addressed to a node — it acts on the simulator.
    Control { token: u64 },
}

impl Event {
    fn node(&self) -> Option<NodeId> {
        match self {
            Event::PacketArrive { node, .. }
            | Event::PortFree { node, .. }
            | Event::Pfc { node, .. }
            | Event::EndpointTimer { node, .. } => Some(*node),
            Event::Control { .. } => None,
        }
    }
}

/// Context handed to node handlers: the clock, the RNG, the buffers for
/// emitted events and completions, and the (optional) telemetry probe.
pub struct NodeCtx<'a> {
    pub now: Nanos,
    /// The simulation-wide packet arena; resolves [`PktRef`] handles.
    pub pool: &'a mut PacketPool,
    pub rng: &'a mut StdRng,
    pub out: &'a mut Vec<(Nanos, Event)>,
    pub completions: &'a mut VecDeque<Completion>,
    /// Telemetry sink; `None` on bare runs. Emit through [`NodeCtx::emit`]
    /// so event construction is skipped entirely when no probe is attached.
    /// (The `'static` trait-object bound keeps reborrowing through nested
    /// contexts free of lifetime-invariance knots; probes are owned types.)
    pub probe: Option<&'a mut (dyn Probe + 'static)>,
}

impl NodeCtx<'_> {
    /// Records a probe event; the closure runs only when a probe is
    /// installed, so the off path is a single branch.
    #[inline]
    pub fn emit(&mut self, ev: impl FnOnce() -> ProbeEvent) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.record(self.now, &ev());
        }
    }
}

/// A node in the fabric.
#[allow(clippy::large_enum_variant)]
pub enum Node {
    Host(Host),
    Switch(Switch),
    /// Transient placeholder while a node is being processed.
    Empty,
}

/// The simulator: owns all nodes, the event queue and the RNG.
pub struct Simulator {
    now: Nanos,
    seq: u64,
    queue: EventQueue<Event>,
    pub nodes: Vec<Node>,
    pub rng: StdRng,
    /// The slab arena every in-flight packet lives in; events and queues
    /// carry [`PktRef`] handles into it.
    pub pool: PacketPool,
    completions: VecDeque<Completion>,
    scratch: Vec<(Nanos, Event)>,
    events: u64,
    probe: Option<Box<dyn Probe>>,
    fault_plane: Option<Box<dyn FaultPlane>>,
    /// Drops ruled by the fault plane at link ingress — they happen *on the
    /// wire*, before any switch sees the packet, so they are booked here
    /// rather than against a switch and merged in [`Simulator::net_stats`].
    fault_stats: NetStats,
    /// Handles re-scheduled by a `Delay`/`Reorder`/`Duplicate` verdict.
    /// Their (re-)arrival bypasses the fault plane — a ruling applies once
    /// per wire traversal, so a delayed packet cannot be delayed again and
    /// a duplicate cannot breed. Entries are removed on arrival; the set is
    /// never iterated, so it cannot perturb determinism.
    fault_immune: HashSet<PktRef>,
}

impl Simulator {
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: 0,
            seq: 0,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            pool: PacketPool::new(),
            completions: VecDeque::new(),
            scratch: Vec::new(),
            events: 0,
            probe: None,
            fault_plane: None,
            fault_stats: NetStats::default(),
            fault_immune: HashSet::new(),
        }
    }

    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Attaches a telemetry probe; every subsequent hot-path event flows
    /// into it. Probes are passive observers — attaching one must not (and,
    /// by the determinism tests, does not) change the packet trace.
    pub fn set_probe(&mut self, probe: Box<dyn Probe>) {
        self.probe = Some(probe);
    }

    /// Detaches and returns the probe, e.g. to drain a trace after a run.
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        self.probe.take()
    }

    pub fn probe(&self) -> Option<&dyn Probe> {
        self.probe.as_deref()
    }

    pub fn probe_mut(&mut self) -> Option<&mut (dyn Probe + 'static)> {
        self.probe.as_deref_mut()
    }

    /// The attached probe's dump (flight-recorder ring, counters …), if any.
    pub fn flight_dump(&self) -> Option<String> {
        self.probe.as_ref().and_then(|p| p.dump())
    }

    /// Installs a fault-injection plane: every subsequent packet arrival is
    /// ruled on by it, and [`Event::Control`] events are dispatched to it.
    pub fn set_fault_plane(&mut self, plane: Box<dyn FaultPlane>) {
        self.fault_plane = Some(plane);
    }

    /// Detaches and returns the fault plane, e.g. to read its state after a
    /// run. Arrivals are delivered unconditionally afterwards.
    pub fn take_fault_plane(&mut self) -> Option<Box<dyn FaultPlane>> {
        self.fault_plane.take()
    }

    /// Schedules a control event for the fault plane at time `at`.
    pub fn schedule_control(&mut self, at: Nanos, token: u64) {
        self.schedule(at, Event::Control { token });
    }

    /// Creates a host; wire it with the `connect_*` helpers.
    pub fn add_host(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Host(Host::new(id)));
        id
    }

    /// Creates a switch with the given policy.
    pub fn add_switch(&mut self, cfg: SwitchConfig) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Switch(Switch::new(id, cfg)));
        id
    }

    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id.0 as usize] {
            Node::Host(h) => h,
            _ => panic!("{id:?} is not a host"),
        }
    }

    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match &mut self.nodes[id.0 as usize] {
            Node::Host(h) => h,
            _ => panic!("{id:?} is not a host"),
        }
    }

    pub fn switch(&self, id: NodeId) -> &Switch {
        match &self.nodes[id.0 as usize] {
            Node::Switch(s) => s,
            _ => panic!("{id:?} is not a switch"),
        }
    }

    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        match &mut self.nodes[id.0 as usize] {
            Node::Switch(s) => s,
            _ => panic!("{id:?} is not a switch"),
        }
    }

    /// Connects a host to a switch full-duplex; returns the switch port
    /// facing the host.
    pub fn connect_host_switch(
        &mut self,
        host: NodeId,
        sw: NodeId,
        gbps: f64,
        delay: Nanos,
    ) -> PortId {
        let port = self.switch_mut(sw).add_port(Link::new(host, Host::PORT, gbps, delay));
        self.host_mut(host).link = Some(Link::new(sw, port, gbps, delay));
        // The switch's incoming link on `port` originates at the host.
        self.switch_mut(sw).set_peer(port, (host, Host::PORT));
        port
    }

    /// Connects two switches full-duplex; returns `(port_on_a, port_on_b)`.
    pub fn connect_switches(
        &mut self,
        a: NodeId,
        b: NodeId,
        gbps: f64,
        delay: Nanos,
    ) -> (PortId, PortId) {
        // Reserve the port numbers first so the links can reference them.
        let pa = self.switch(a).ports.len();
        let pb = self.switch(b).ports.len();
        let got_a = self.switch_mut(a).add_port(Link::new(b, pb, gbps, delay));
        let got_b = self.switch_mut(b).add_port(Link::new(a, pa, gbps, delay));
        debug_assert_eq!((got_a, got_b), (pa, pb));
        self.switch_mut(a).set_peer(pa, (b, pb));
        self.switch_mut(b).set_peer(pb, (a, pa));
        (pa, pb)
    }

    /// Directly connects two hosts (the Fig. 8 back-to-back setup).
    pub fn connect_hosts(&mut self, a: NodeId, b: NodeId, gbps: f64, delay: Nanos) {
        self.host_mut(a).link = Some(Link::new(b, Host::PORT, gbps, delay));
        self.host_mut(b).link = Some(Link::new(a, Host::PORT, gbps, delay));
    }

    /// Installs a transport endpoint for `flow` on `host`.
    pub fn install_endpoint(&mut self, host: NodeId, flow: FlowId, ep: Box<dyn Endpoint>) {
        self.host_mut(host).install(flow, ep);
    }

    /// Posts a Work Request on `flow`'s sender endpoint and kicks the NIC.
    pub fn post(&mut self, host: NodeId, flow: FlowId, wr_id: u64, op: WorkReqOp, len: u64) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.record(
                self.now,
                &ProbeEvent::MsgPosted { node: host.0, flow: flow.0, wr_id, bytes: len },
            );
        }
        self.host_mut(host).post(flow, wr_id, op, len);
        self.kick(host);
    }

    /// Gives `host`'s NIC a transmission opportunity now.
    pub fn kick(&mut self, host: NodeId) {
        self.with_node(host, |node, ctx| {
            if let Node::Host(h) = node {
                h.try_transmit(ctx);
            }
        });
    }

    /// Schedules an event.
    pub fn schedule(&mut self, at: Nanos, ev: Event) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        self.seq += 1;
        self.queue.insert(at, self.seq, ev);
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut Node, &mut NodeCtx)) {
        let mut node = std::mem::replace(&mut self.nodes[id.0 as usize], Node::Empty);
        let mut out = std::mem::take(&mut self.scratch);
        {
            let mut ctx = NodeCtx {
                now: self.now,
                pool: &mut self.pool,
                rng: &mut self.rng,
                out: &mut out,
                completions: &mut self.completions,
                probe: self.probe.as_deref_mut(),
            };
            f(&mut node, &mut ctx);
        }
        self.nodes[id.0 as usize] = node;
        for (at, ev) in out.drain(..) {
            self.seq += 1;
            self.queue.insert(at, self.seq, ev);
        }
        self.scratch = out;
    }

    /// Consults the installed fault plane about an arrival; returns `true`
    /// when the packet was consumed (dropped or corrupted) and must not be
    /// delivered to the node.
    fn fault_intercept(&mut self, node: NodeId, port: PortId, pkt: PktRef) -> bool {
        // A handle re-scheduled by an earlier Delay/Reorder/Duplicate
        // verdict arrives exactly once more, without a second ruling.
        if self.fault_immune.remove(&pkt) {
            return false;
        }
        let verdict = match self.fault_plane.as_mut() {
            Some(plane) => plane.on_arrival(self.now, node, port, &self.pool[pkt]),
            None => FaultVerdict::Deliver,
        };
        match verdict {
            FaultVerdict::Deliver => false,
            FaultVerdict::Drop => {
                self.fault_discard(node, port, pkt);
                true
            }
            FaultVerdict::Duplicate { after } => {
                // The original is delivered now; an extra copy (fresh pool
                // slot, immune to further rulings) arrives `after` ns later.
                // The copy entered the fabric without a sender transmission,
                // so it is booked on the supply side of conservation.
                let copy = self.pool.insert(self.pool[pkt].clone());
                match self.pool[copy].dcp_tag() {
                    DcpTag::HeaderOnly => self.fault_stats.dup_ho_injected += 1,
                    _ if self.pool[copy].is_data() => self.fault_stats.dup_data_injected += 1,
                    _ => {} // ACK-class copies sit outside the identities.
                }
                self.fault_immune.insert(copy);
                self.schedule(self.now + after, Event::PacketArrive { node, port, pkt: copy });
                false
            }
            FaultVerdict::Delay { by } | FaultVerdict::Reorder { by } => {
                // Hold the packet on the wire; same-cable successors may
                // overtake it through the (time, seq) ordering.
                self.fault_immune.insert(pkt);
                self.schedule(self.now + by, Event::PacketArrive { node, port, pkt });
                true
            }
            FaultVerdict::Corrupt => {
                // A trimming switch turns a corrupt DCP data packet into its
                // header-only notification (the payload is gone but the
                // parseable header still tells the receiver *what* was
                // lost); anywhere else corruption is just a wire loss.
                let can_trim = matches!(
                    &self.nodes[node.0 as usize],
                    Node::Switch(s) if s.cfg.trimming
                ) && self.pool[pkt].dcp_tag() == DcpTag::Data;
                if can_trim {
                    self.with_node(node, |n, ctx| {
                        if let Node::Switch(sw) = n {
                            sw.on_corrupt(port, pkt, ctx);
                        }
                    });
                } else {
                    self.fault_discard(node, port, pkt);
                }
                true
            }
        }
    }

    /// Books a fault-plane wire loss by packet class and releases the
    /// handle. Data losses land in `fault_drops` (distinct from congestion
    /// `data_drops`); header-only losses stay in `ho_drops` so the Table 5
    /// identity `trims = ho_received + ho_drops` holds; ACK-class losses
    /// join `ack_drops`.
    fn fault_discard(&mut self, node: NodeId, port: PortId, pkt: PktRef) {
        let (is_ho, is_data, flow, psn) = {
            let p = &self.pool[pkt];
            (p.dcp_tag() == DcpTag::HeaderOnly, p.is_data(), p.flow.0, p.psn())
        };
        if is_ho {
            self.fault_stats.ho_drops += 1;
        } else if is_data {
            self.fault_stats.fault_drops += 1;
        } else {
            self.fault_stats.ack_drops += 1;
        }
        if let Some(p) = self.probe.as_deref_mut() {
            p.record(
                self.now,
                &ProbeEvent::Drop {
                    node: node.0,
                    port: port as u32,
                    flow,
                    psn,
                    class: DropClass::Fault,
                },
            );
        }
        self.pool.release(pkt);
    }

    /// Processes one event; returns its timestamp, or `None` if idle.
    pub fn step(&mut self) -> Option<Nanos> {
        let (at, _seq, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.events += 1;
        let Some(node_id) = ev.node() else {
            let Event::Control { token } = ev else { unreachable!("only Control is node-less") };
            // Detach the plane so it can mutate the simulator re-entrantly
            // (fail switches, flip cables, schedule more controls).
            if let Some(mut plane) = self.fault_plane.take() {
                plane.on_control(token, self);
                self.fault_plane = Some(plane);
            }
            return Some(at);
        };
        if let Event::PacketArrive { node, port, pkt } = ev {
            if self.fault_plane.is_some() && self.fault_intercept(node, port, pkt) {
                return Some(at);
            }
        }
        self.with_node(node_id, |node, ctx| match (node, ev) {
            (Node::Host(h), Event::PacketArrive { pkt, .. }) => h.on_packet(pkt, ctx),
            (Node::Host(h), Event::PortFree { .. }) => h.on_port_free(ctx),
            (Node::Host(h), Event::Pfc { pause, .. }) => h.on_pfc(pause, ctx),
            (Node::Host(h), Event::EndpointTimer { ep, token, .. }) => h.on_timer(ep, token, ctx),
            (Node::Switch(sw), Event::PacketArrive { port, pkt, .. }) => {
                sw.on_packet(port, pkt, ctx)
            }
            (Node::Switch(sw), Event::PortFree { port, .. }) => sw.on_port_free(port, ctx),
            (Node::Switch(sw), Event::Pfc { port, pause, .. }) => sw.on_pfc(port, pause, ctx),
            (Node::Switch(_), Event::EndpointTimer { .. }) => {
                unreachable!("switches have no endpoints")
            }
            (_, Event::Control { .. }) => unreachable!("Control handled before dispatch"),
            (Node::Empty, _) => unreachable!("event for node under processing"),
        });
        Some(at)
    }

    /// Processes the next event only if it is due at or before `limit`;
    /// returns `None` (without advancing) otherwise or when idle.
    pub fn step_bounded(&mut self, limit: Nanos) -> Option<Nanos> {
        match self.queue.next_at() {
            Some(at) if at <= limit => self.step(),
            _ => None,
        }
    }

    /// Runs until the queue is empty or the clock passes `t`.
    pub fn run_until(&mut self, t: Nanos) {
        while let Some(at) = self.queue.next_at() {
            if at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs until every event is processed or `deadline` passes. Returns
    /// true if the queue drained. On a missed deadline, an attached probe's
    /// dump (e.g. the flight-recorder ring of the last few thousand events)
    /// is printed to stderr — a stalled run leaves a trace, not a boolean.
    pub fn run_to_quiescence(&mut self, deadline: Nanos) -> bool {
        while let Some(at) = self.queue.next_at() {
            if at > deadline {
                if let Some(dump) = self.flight_dump() {
                    eprintln!(
                        "run_to_quiescence: deadline {deadline} missed at t={} with {} pending events\n{dump}",
                        self.now,
                        self.queue.len(),
                    );
                }
                return false;
            }
            self.step();
        }
        true
    }

    /// Drains completions surfaced since the last call.
    ///
    /// Allocates a fresh `Vec` per call; event-per-step loops should prefer
    /// [`Simulator::for_each_completion`].
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Invokes `f` on each completion surfaced since the last drain,
    /// without allocating.
    pub fn for_each_completion(&mut self, mut f: impl FnMut(Completion)) {
        while let Some(c) = self.completions.pop_front() {
            f(c);
        }
    }

    /// Drains completions into `buf` (cleared first), reusing its storage —
    /// for loops that must keep `&mut Simulator` free while consuming them.
    pub fn drain_completions_into(&mut self, buf: &mut Vec<Completion>) {
        buf.clear();
        buf.extend(self.completions.drain(..));
    }

    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total events dispatched by [`Simulator::step`] so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// High-water mark of the pending-event queue.
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    /// Aggregated fabric counters across all switches, plus the simulator's
    /// own fault-plane wire losses.
    pub fn net_stats(&self) -> NetStats {
        let mut total = self.fault_stats.clone();
        for n in &self.nodes {
            if let Node::Switch(s) = n {
                total.merge(&s.stats);
            }
        }
        total
    }

    /// Merge of every endpoint's transport counters across all hosts (both
    /// senders and receivers) — the aggregate the conservation identities
    /// are stated over.
    pub fn all_endpoint_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for n in &self.nodes {
            if let Node::Host(h) = n {
                for ep in h.endpoints() {
                    total.merge(&ep.stats());
                }
            }
        }
        total
    }

    /// Cross-validates fabric and endpoint counters (see
    /// [`crate::stats::Conservation`]). Pass `quiesced = true` after a
    /// drained [`Simulator::run_to_quiescence`] for exact accounting; on a
    /// violation an attached probe's dump is printed to stderr.
    pub fn check_conservation(&self, quiesced: bool) -> crate::stats::Conservation {
        let mut c = crate::stats::Conservation::check(
            &self.net_stats(),
            &self.all_endpoint_stats(),
            quiesced,
        );
        // Pool leak check: at quiescence every handle must have been taken
        // or released — a live slot means some path dropped a PktRef
        // without freeing it.
        if quiesced && !self.pool.is_empty() {
            c.violations.push(format!(
                "packet pool leaks {} live slot(s) at quiescence (capacity {})",
                self.pool.len(),
                self.pool.capacity()
            ));
        }
        if !c.is_ok() {
            if let Some(dump) = self.flight_dump() {
                eprintln!("conservation violated:\n{}\n{dump}", c.violations.join("\n"));
            }
        }
        c
    }

    /// Transport counters of `flow`'s endpoint on `host`.
    pub fn endpoint_stats(&self, host: NodeId, flow: FlowId) -> TransportStats {
        self.host(host)
            .endpoint(flow)
            .unwrap_or_else(|| panic!("no endpoint for {flow:?} on {host:?}"))
            .stats()
    }

    /// Whether `flow`'s endpoint on `host` reports itself finished.
    pub fn endpoint_done(&self, host: NodeId, flow: FlowId) -> bool {
        self.host(host).endpoint(flow).map(|e| e.is_done()).unwrap_or(true)
    }

    /// Port count of `id` when it names a switch, `None` for hosts and
    /// out-of-range ids — the non-panicking topology query fault-plan
    /// validation runs against untrusted (loaded) plans.
    pub fn switch_port_count(&self, id: NodeId) -> Option<usize> {
        match self.nodes.get(id.0 as usize) {
            Some(Node::Switch(s)) => Some(s.ports.len()),
            _ => None,
        }
    }

    // --- Topology-fault mechanisms (driven by an installed `FaultPlane`) ---

    /// The two unidirectional links of the full-duplex cable on `sw`'s
    /// `port`, each named by its *arrival* endpoint `(node, port)` — the key
    /// a [`FaultPlane`] sees in `on_arrival`. `[0]` is the direction leaving
    /// `sw`, `[1]` the direction arriving at `sw`.
    pub fn cable_arrival_keys(&self, sw: NodeId, port: PortId) -> [(NodeId, PortId); 2] {
        let link = self.switch(sw).ports[port].link;
        [(link.to, link.to_port), (sw, port)]
    }

    /// Downs (`up = false`) or restores both directions of the cable on
    /// `sw`'s `port`. Down ports stop serving their egress queues — traffic
    /// hashed onto them backs up, which is exactly what lets adaptive
    /// routing route around the fault while static ECMP blackholes.
    /// Restoring kicks both ends so backed-up queues drain immediately.
    /// Packets already in flight on the wire are *not* touched; pair this
    /// with a [`FaultPlane`] dropping arrivals on the same keys for full
    /// link-down semantics.
    pub fn set_cable_up(&mut self, sw: NodeId, port: PortId, up: bool) {
        let link = self.switch(sw).ports[port].link;
        self.switch_mut(sw).set_port_up(port, up);
        match &mut self.nodes[link.to.0 as usize] {
            Node::Host(h) => h.link_up = up,
            Node::Switch(s) => s.set_port_up(link.to_port, up),
            Node::Empty => unreachable!("cable peer under processing"),
        }
        if up {
            self.kick_switch_port(sw, port);
            match &self.nodes[link.to.0 as usize] {
                Node::Host(_) => self.kick(link.to),
                Node::Switch(_) => self.kick_switch_port(link.to, link.to_port),
                Node::Empty => unreachable!(),
            }
        }
    }

    /// Degrades (or restores) both directions of the cable on `sw`'s `port`
    /// to the given rate and propagation delay. Packets already serializing
    /// keep their old timing; subsequent transmissions use the new one.
    pub fn set_cable_params(&mut self, sw: NodeId, port: PortId, gbps: f64, delay: Nanos) {
        let (to, to_port) = {
            let l = &mut self.switch_mut(sw).ports[port].link;
            l.gbps = gbps;
            l.delay = delay;
            (l.to, l.to_port)
        };
        match &mut self.nodes[to.0 as usize] {
            Node::Host(h) => {
                if let Some(l) = h.link.as_mut() {
                    l.gbps = gbps;
                    l.delay = delay;
                }
            }
            Node::Switch(s) => {
                // `to_port` is the peer's egress back toward us — the
                // reverse direction of this same cable (see
                // `connect_switches`), so parallel cables stay distinct.
                let back = &mut s.ports[to_port].link;
                debug_assert_eq!(back.to, sw);
                back.gbps = gbps;
                back.delay = delay;
            }
            Node::Empty => unreachable!("cable peer under processing"),
        }
    }

    /// Fails switch `sw` in place: every queued packet is drained and
    /// booked as a fault drop (by class), PFC state is cleared with RESUMEs
    /// sent upstream so no neighbour stays wedged, and all ports go down.
    /// The node object survives — arrivals while failed are the
    /// [`FaultPlane`]'s to drop.
    pub fn fail_switch(&mut self, sw: NodeId) {
        self.with_node(sw, |n, ctx| {
            if let Node::Switch(s) = n {
                s.fail(ctx);
            }
        });
    }

    /// Recovers a failed switch: ports come back up (queues are empty —
    /// `fail` drained them — so there is nothing to kick until traffic
    /// arrives). Routing and configuration are unchanged.
    pub fn recover_switch(&mut self, sw: NodeId) {
        let s = self.switch_mut(sw);
        for p in 0..s.ports.len() {
            s.set_port_up(p, true);
        }
    }

    /// The fabric's PFC pause-dependency edges, one `(blocked, blocker)`
    /// pair per asserted pause: switch `s` holding ingress `p` over xoff
    /// has PAUSEd its upstream peer `u`, so `u`'s egress toward `s` cannot
    /// drain until `s` does — `u` waits on `s`. A cycle in this graph is
    /// the classic PFC deadlock (every switch in the cycle waits on the
    /// next); the `dcp-check` watchdog runs cycle detection over it.
    /// Edges are emitted in node/port order, so the export is
    /// deterministic.
    pub fn pause_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for n in &self.nodes {
            if let Node::Switch(s) = n {
                for p in s.paused_ingress_ports() {
                    if let Some((u, _)) = s.ports[p].peer {
                        edges.push((u, s.id));
                    }
                }
            }
        }
        edges
    }

    /// Gives `sw`'s egress `port` a transmission opportunity now (used
    /// after a cable comes back up with a backlog).
    pub fn kick_switch_port(&mut self, sw: NodeId, port: PortId) {
        self.with_node(sw, |n, ctx| {
            if let Node::Switch(s) = n {
                s.try_transmit(port, ctx);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression lock for the handle-based event layout: every calendar
    /// queue entry copy must stay within 32 bytes. Growing a variant past
    /// this puts struct traffic back on the hottest path in the simulator.
    #[test]
    fn event_stays_handle_sized() {
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }
}
