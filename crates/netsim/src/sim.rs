//! The deterministic event loop.
//!
//! A calendar queue ([`crate::equeue::EventQueue`]) orders events by
//! `(time, sequence)`; the sequence tiebreak makes same-instant ordering
//! stable, so a given seed always produces an identical packet trace. Node
//! handlers never touch other nodes directly — they emit `(time, Event)`
//! pairs through [`NodeCtx`].
//!
//! The simulator holds one or more engine *shards* (see [`crate::shard`]):
//! unsharded it is exactly the serial engine of PR 3 — one queue, one
//! pool, one RNG — and [`Simulator::partition`] splits it along topology
//! boundaries for conservative-lookahead parallel execution. All public
//! stepping APIs work in both modes; `step`/`step_bounded` stay
//! event-at-a-time, while [`Simulator::advance`] /
//! [`Simulator::advance_bounded`] batch to safe window boundaries and are
//! what lets a sharded run actually go wide.

use crate::endpoint::{Completion, Endpoint};
use crate::fault::{FaultPlane, FaultVerdict};
use crate::host::{Host, QpRef};
use crate::link::Link;
use crate::packet::{FlowId, NodeId, PortId};
use crate::pool::{PacketPool, PktRef};
use crate::shard::{SerialWindow, Shard, StepOut, IDLE};
use crate::stats::{NetStats, TransportStats};
use crate::switch::{Switch, SwitchConfig};
use crate::time::Nanos;
use dcp_rdma::headers::DcpTag;
use dcp_rdma::qp::WorkReqOp;
use dcp_telemetry::{DropClass, Probe, ProbeEvent};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// Everything that can happen in the fabric.
///
/// Events are handle-sized and `Copy`: a packet rides through the calendar
/// queue as its 8-byte [`PktRef`] into the simulator's [`PacketPool`], so
/// bucket pushes and heapify swaps move ≤ 32 bytes
/// (`event_stays_handle_sized` locks this).
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A packet finished propagating and arrives at `node` on `port`.
    PacketArrive { node: NodeId, port: PortId, pkt: PktRef },
    /// `node`'s egress `port` finished serializing its current packet.
    PortFree { node: NodeId, port: PortId },
    /// A PFC PAUSE (`pause = true`) or RESUME frame arrives at `node`.
    Pfc { node: NodeId, port: PortId, pause: bool },
    /// A transport timer fires on the endpoint in connection-table `slot`
    /// of host `node`. The generation stamp makes timers armed by a since-
    /// removed endpoint detectably stale: the host drops them at fire time
    /// (the event is still dispatched and counted — the fire-and-filter
    /// discipline transports already rely on for their own `gen` tokens).
    EndpointTimer { node: NodeId, slot: u32, gen: u32, token: u64 },
    /// A scheduled control-plane action fires: the installed
    /// [`FaultPlane`] (if any) interprets `token` (e.g. "apply fault-plan
    /// entry #3 now"). Not addressed to a node — it acts on the simulator.
    Control { token: u64 },
}

impl Event {
    pub(crate) fn node(&self) -> Option<NodeId> {
        match self {
            Event::PacketArrive { node, .. }
            | Event::PortFree { node, .. }
            | Event::Pfc { node, .. }
            | Event::EndpointTimer { node, .. } => Some(*node),
            Event::Control { .. } => None,
        }
    }
}

/// Context handed to node handlers: the clock, the RNG, the buffers for
/// emitted events and completions, and the (optional) telemetry probe.
pub struct NodeCtx<'a> {
    pub now: Nanos,
    /// The owning shard's packet arena; resolves [`PktRef`] handles.
    pub pool: &'a mut PacketPool,
    pub rng: &'a mut StdRng,
    pub out: &'a mut Vec<(Nanos, Event)>,
    pub completions: &'a mut VecDequeCompletions<'a>,
    /// Telemetry sink; `None` on bare runs. Emit through [`NodeCtx::emit`]
    /// so event construction is skipped entirely when no probe is attached.
    /// (The `'static` trait-object bound keeps reborrowing through nested
    /// contexts free of lifetime-invariance knots; probes are owned types.)
    pub probe: Option<&'a mut (dyn Probe + 'static)>,
}

impl NodeCtx<'_> {
    /// Records a probe event; the closure runs only when a probe is
    /// installed, so the off path is a single branch.
    #[inline]
    pub fn emit(&mut self, ev: impl FnOnce() -> ProbeEvent) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.record(self.now, &ev());
        }
    }
}

/// A node in the fabric.
#[allow(clippy::large_enum_variant)]
pub enum Node {
    Host(Host),
    Switch(Switch),
    /// Transient placeholder while a node is being processed.
    Empty,
}

/// The simulator: owns all nodes, the engine shards and the control plane.
pub struct Simulator {
    /// User-visible clock: the latest processed event time (high-water
    /// across shards), pushed forward by `run_until` limits.
    pub(crate) clock: Nanos,
    pub(crate) seed: u64,
    /// Engine shards; exactly one until [`Simulator::partition`] runs.
    pub(crate) shards: Vec<Shard>,
    /// Node index → owning shard; empty while unsharded.
    pub(crate) node_shard: Vec<u32>,
    /// Conservative-lookahead horizon (min cross-shard link delay).
    pub(crate) lookahead: Nanos,
    /// Worker threads for parallel window sessions.
    pub(crate) workers: usize,
    pub(crate) auto_partition_enabled: bool,
    pub nodes: Vec<Node>,
    pub(crate) probe: Option<Mutex<Box<dyn Probe>>>,
    pub(crate) fault_plane: Option<Mutex<Box<dyn FaultPlane>>>,
    /// Sharded-mode control events, ordered `(at, seq)`; with one shard
    /// controls stay in the shard queue for exact legacy ordering.
    pub(crate) controls: BinaryHeap<Reverse<(Nanos, u64, u64)>>,
    pub(crate) ctl_seq: u64,
    pub(crate) ctl_events: u64,
    /// In-progress serial window walk (sharded mode only).
    pub(crate) serial_window: Option<SerialWindow>,
    /// Per-shard probe staging slots for parallel window sessions.
    pub(crate) probe_slots: Vec<Mutex<Vec<(Nanos, ProbeEvent)>>>,
    /// Reused staging vector for the serial timestamp-merge of per-shard
    /// probe buffers at window closes.
    pub(crate) probe_merge: Vec<(Nanos, ProbeEvent)>,
    /// `n × n` cross-shard mailboxes, indexed `src * n + dst`.
    pub(crate) mail: Vec<Mutex<Vec<crate::shard::MailEntry>>>,
}

/// Alias kept so `NodeCtx` reads naturally; completions are a plain
/// `VecDeque`.
pub type VecDequeCompletions<'a> = std::collections::VecDeque<Completion>;

impl Simulator {
    pub fn new(seed: u64) -> Self {
        Simulator {
            clock: 0,
            seed,
            shards: vec![Shard::new(seed)],
            node_shard: Vec::new(),
            lookahead: IDLE,
            workers: 1,
            auto_partition_enabled: true,
            nodes: Vec::new(),
            probe: None,
            fault_plane: None,
            controls: BinaryHeap::new(),
            ctl_seq: 0,
            ctl_events: 0,
            serial_window: None,
            probe_slots: Vec::new(),
            probe_merge: Vec::new(),
            mail: Vec::new(),
        }
    }

    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// Attaches a telemetry probe; every subsequent hot-path event flows
    /// into it. Probes are passive observers — attaching one must not (and,
    /// by the determinism tests, does not) change the packet trace.
    pub fn set_probe(&mut self, probe: Box<dyn Probe>) {
        self.probe = Some(Mutex::new(probe));
    }

    /// Detaches and returns the probe, e.g. to drain a trace after a run.
    /// Buffered sharded-mode records are flushed into it first.
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        self.flush_probes_serial();
        self.probe.take().map(|m| m.into_inner().unwrap())
    }

    pub fn probe_mut(&mut self) -> Option<&mut (dyn Probe + 'static)> {
        self.flush_probes_serial();
        self.probe.as_mut().map(|m| &mut **m.get_mut().unwrap())
    }

    /// The attached probe's dump (flight-recorder ring, counters …), if any.
    pub fn flight_dump(&self) -> Option<String> {
        self.probe.as_ref().and_then(|m| m.lock().unwrap().dump())
    }

    /// Installs a fault-injection plane: every subsequent packet arrival is
    /// ruled on by it, and [`Event::Control`] events are dispatched to it.
    pub fn set_fault_plane(&mut self, plane: Box<dyn FaultPlane>) {
        self.fault_plane = Some(Mutex::new(plane));
    }

    /// Detaches and returns the fault plane, e.g. to read its state after a
    /// run. Arrivals are delivered unconditionally afterwards.
    pub fn take_fault_plane(&mut self) -> Option<Box<dyn FaultPlane>> {
        self.fault_plane.take().map(|m| m.into_inner().unwrap())
    }

    /// Schedules a control event for the fault plane at time `at`.
    pub fn schedule_control(&mut self, at: Nanos, token: u64) {
        self.schedule(at, Event::Control { token });
    }

    /// Creates a host; wire it with the `connect_*` helpers.
    pub fn add_host(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Host(Host::new(id)));
        id
    }

    /// Creates a switch with the given policy.
    pub fn add_switch(&mut self, cfg: SwitchConfig) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Switch(Switch::new(id, cfg)));
        id
    }

    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id.0 as usize] {
            Node::Host(h) => h,
            _ => panic!("{id:?} is not a host"),
        }
    }

    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match &mut self.nodes[id.0 as usize] {
            Node::Host(h) => h,
            _ => panic!("{id:?} is not a host"),
        }
    }

    pub fn switch(&self, id: NodeId) -> &Switch {
        match &self.nodes[id.0 as usize] {
            Node::Switch(s) => s,
            _ => panic!("{id:?} is not a switch"),
        }
    }

    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        match &mut self.nodes[id.0 as usize] {
            Node::Switch(s) => s,
            _ => panic!("{id:?} is not a switch"),
        }
    }

    /// Connects a host to a switch full-duplex; returns the switch port
    /// facing the host.
    pub fn connect_host_switch(
        &mut self,
        host: NodeId,
        sw: NodeId,
        gbps: f64,
        delay: Nanos,
    ) -> PortId {
        let port = self.switch_mut(sw).add_port(Link::new(host, Host::PORT, gbps, delay));
        self.host_mut(host).link = Some(Link::new(sw, port, gbps, delay));
        // The switch's incoming link on `port` originates at the host.
        self.switch_mut(sw).set_peer(port, (host, Host::PORT));
        port
    }

    /// Connects two switches full-duplex; returns `(port_on_a, port_on_b)`.
    pub fn connect_switches(
        &mut self,
        a: NodeId,
        b: NodeId,
        gbps: f64,
        delay: Nanos,
    ) -> (PortId, PortId) {
        // Reserve the port numbers first so the links can reference them.
        let pa = self.switch(a).ports.len();
        let pb = self.switch(b).ports.len();
        let got_a = self.switch_mut(a).add_port(Link::new(b, pb, gbps, delay));
        let got_b = self.switch_mut(b).add_port(Link::new(a, pa, gbps, delay));
        debug_assert_eq!((got_a, got_b), (pa, pb));
        self.switch_mut(a).set_peer(pa, (b, pb));
        self.switch_mut(b).set_peer(pb, (a, pa));
        (pa, pb)
    }

    /// Directly connects two hosts (the Fig. 8 back-to-back setup).
    pub fn connect_hosts(&mut self, a: NodeId, b: NodeId, gbps: f64, delay: Nanos) {
        self.host_mut(a).link = Some(Link::new(b, Host::PORT, gbps, delay));
        self.host_mut(b).link = Some(Link::new(a, Host::PORT, gbps, delay));
    }

    /// Installs a transport endpoint for `flow` on `host`; returns its
    /// generational connection-table handle.
    pub fn install_endpoint(&mut self, host: NodeId, flow: FlowId, ep: Box<dyn Endpoint>) -> QpRef {
        self.host_mut(host).install(flow, ep)
    }

    /// Uninstalls the endpoint behind `qp` on `host`, returning it for
    /// recycling. Its counters are folded into the host's retired
    /// accumulator (so [`Simulator::all_endpoint_stats`] keeps counting
    /// them) and any timers it left armed die on the generation check.
    /// `None` when the handle is stale.
    pub fn remove_endpoint(&mut self, host: NodeId, qp: QpRef) -> Option<Box<dyn Endpoint>> {
        self.host_mut(host).remove(qp)
    }

    /// Posts a Work Request on `flow`'s sender endpoint and kicks the NIC.
    pub fn post(&mut self, host: NodeId, flow: FlowId, wr_id: u64, op: WorkReqOp, len: u64) {
        let now = self.clock;
        if self.probe.is_some() {
            let ev = ProbeEvent::MsgPosted { node: host.0, flow: flow.0, wr_id, bytes: len };
            if self.shards.len() == 1 {
                if let Some(p) = self.probe.as_mut() {
                    p.get_mut().unwrap().record(now, &ev);
                }
            } else {
                // Sharded: stage into the owning shard's buffer so the event
                // lands in timestamp order at the next window-close merge
                // (a direct record could jump buffered earlier events).
                let s = self.shard_of(host);
                self.shards[s].bufp.record(now, &ev);
            }
        }
        self.host_mut(host).post(flow, wr_id, op, len);
        self.kick(host);
    }

    /// Gives `host`'s NIC a transmission opportunity now.
    pub fn kick(&mut self, host: NodeId) {
        self.with_node(host, |node, ctx| {
            if let Node::Host(h) = node {
                h.try_transmit(ctx);
            }
        });
    }

    /// Which shard owns node `id` (always 0 while unsharded).
    #[inline]
    pub(crate) fn shard_of(&self, id: NodeId) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            self.node_shard[id.0 as usize] as usize
        }
    }

    /// Schedules an event, routing it to the owning shard (node events) or
    /// the control queue (sharded mode).
    pub fn schedule(&mut self, at: Nanos, ev: Event) {
        debug_assert!(at >= self.clock, "scheduling into the past: {at} < {}", self.clock);
        match ev.node() {
            Some(id) => {
                let d = self.shard_of(id);
                self.shards[d].schedule(at, ev);
                // The insert may land inside an open serial window of an
                // already-walked shard; rescan from the start.
                if let Some(w) = self.serial_window.as_mut() {
                    w.cursor = 0;
                }
            }
            None => {
                if self.shards.len() == 1 {
                    self.shards[0].schedule(at, ev);
                } else {
                    let Event::Control { token } = ev else {
                        unreachable!("only Control is node-less")
                    };
                    self.ctl_seq += 1;
                    self.controls.push(Reverse((at, self.ctl_seq, token)));
                }
            }
        }
    }

    /// Serial (non-window) node access: control-plane paths, `post`/`kick`
    /// from harness code, cable flips. Uses the owning shard's pool/RNG and
    /// routes emissions across shards directly (no mailboxes — this runs
    /// with exclusive access to everything).
    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut Node, &mut NodeCtx)) {
        let s = self.shard_of(id);
        let sharded = self.shards.len() > 1;
        let mut node = std::mem::replace(&mut self.nodes[id.0 as usize], Node::Empty);
        let shard = &mut self.shards[s];
        let mut out = std::mem::take(&mut shard.scratch);
        {
            // Sharded runs stage emissions into the shard's probe buffer
            // (merged by timestamp at the next window close) so a serial
            // control-path call between or inside windows cannot interleave
            // records out of order with buffered hot-path events; a
            // single-shard run records straight into the probe, as ever.
            let probe: Option<&mut (dyn Probe + 'static)> = match &mut self.probe {
                Some(_) if sharded => Some(&mut shard.bufp),
                Some(m) => Some(&mut **m.get_mut().unwrap()),
                None => None,
            };
            let mut ctx = NodeCtx {
                now: self.clock,
                pool: &mut shard.pool,
                rng: &mut shard.rng,
                out: &mut out,
                completions: &mut shard.completions,
                probe,
            };
            f(&mut node, &mut ctx);
        }
        self.nodes[id.0 as usize] = node;
        for (at, ev) in out.drain(..) {
            self.serial_insert(s, at, ev);
        }
        self.shards[s].scratch = out;
    }

    /// Inserts an event emitted from a serial context on shard `src`,
    /// moving the packet between pools when it crosses shards.
    fn serial_insert(&mut self, src: usize, at: Nanos, ev: Event) {
        let Some(node) = ev.node() else {
            // Handlers do not emit Control, but route defensively.
            self.schedule(at, ev);
            return;
        };
        let dst = self.shard_of(node);
        if dst == src {
            self.shards[src].schedule(at, ev);
        } else {
            let ev = match ev {
                Event::PacketArrive { node, port, pkt } => {
                    let p = self.shards[src].pool.take(pkt);
                    let fresh = self.shards[dst].pool.insert(p);
                    Event::PacketArrive { node, port, pkt: fresh }
                }
                other => other,
            };
            self.shards[dst].schedule(at, ev);
        }
        if let Some(w) = self.serial_window.as_mut() {
            w.cursor = 0;
        }
    }

    /// Consults the installed fault plane about an arrival; returns `true`
    /// when the packet was consumed (dropped or corrupted) and must not be
    /// delivered to the node. Serial single-shard path; the sharded twin
    /// lives in [`crate::shard`].
    fn fault_intercept_single(&mut self, node: NodeId, port: PortId, pkt: PktRef) -> bool {
        // A handle re-scheduled by an earlier Delay/Reorder/Duplicate
        // verdict arrives exactly once more, without a second ruling.
        if self.shards[0].fault_immune.remove(&pkt) {
            return false;
        }
        let now = self.clock;
        let verdict = match self.fault_plane.as_mut() {
            Some(m) => m.get_mut().unwrap().on_arrival(now, node, port, &self.shards[0].pool[pkt]),
            None => FaultVerdict::Deliver,
        };
        match verdict {
            FaultVerdict::Deliver => false,
            FaultVerdict::Drop => {
                self.fault_discard_single(node, port, pkt);
                true
            }
            FaultVerdict::Duplicate { after } => {
                // The original is delivered now; an extra copy (fresh pool
                // slot, immune to further rulings) arrives `after` ns later.
                // The copy entered the fabric without a sender transmission,
                // so it is booked on the supply side of conservation.
                let s0 = &mut self.shards[0];
                let copy = s0.pool.insert(s0.pool[pkt].clone());
                match s0.pool[copy].dcp_tag() {
                    DcpTag::HeaderOnly => s0.fault_stats.dup_ho_injected += 1,
                    _ if s0.pool[copy].is_data() => s0.fault_stats.dup_data_injected += 1,
                    _ => {} // ACK-class copies sit outside the identities.
                }
                s0.fault_immune.insert(copy);
                self.schedule(now + after, Event::PacketArrive { node, port, pkt: copy });
                false
            }
            FaultVerdict::Delay { by } | FaultVerdict::Reorder { by } => {
                // Hold the packet on the wire; same-cable successors may
                // overtake it through the (time, seq) ordering.
                self.shards[0].fault_immune.insert(pkt);
                self.schedule(now + by, Event::PacketArrive { node, port, pkt });
                true
            }
            FaultVerdict::Corrupt => {
                // A trimming switch turns a corrupt DCP data packet into its
                // header-only notification (the payload is gone but the
                // parseable header still tells the receiver *what* was
                // lost); anywhere else corruption is just a wire loss.
                let can_trim = matches!(
                    &self.nodes[node.0 as usize],
                    Node::Switch(s) if s.cfg.trimming
                ) && self.shards[0].pool[pkt].dcp_tag() == DcpTag::Data;
                if can_trim {
                    self.with_node(node, |n, ctx| {
                        if let Node::Switch(sw) = n {
                            sw.on_corrupt(port, pkt, ctx);
                        }
                    });
                } else {
                    self.fault_discard_single(node, port, pkt);
                }
                true
            }
        }
    }

    /// Books a fault-plane wire loss by packet class and releases the
    /// handle. Data losses land in `fault_drops` (distinct from congestion
    /// `data_drops`); header-only losses stay in `ho_drops` so the Table 5
    /// identity `trims = ho_received + ho_drops` holds; ACK-class losses
    /// join `ack_drops`.
    fn fault_discard_single(&mut self, node: NodeId, port: PortId, pkt: PktRef) {
        let now = self.clock;
        let s0 = &mut self.shards[0];
        let (is_ho, is_data, flow, psn) = {
            let p = &s0.pool[pkt];
            (p.dcp_tag() == DcpTag::HeaderOnly, p.is_data(), p.flow.0, p.psn())
        };
        if is_ho {
            s0.fault_stats.ho_drops += 1;
        } else if is_data {
            s0.fault_stats.fault_drops += 1;
        } else {
            s0.fault_stats.ack_drops += 1;
        }
        if let Some(m) = self.probe.as_mut() {
            m.get_mut().unwrap().record(
                now,
                &ProbeEvent::Drop {
                    node: node.0,
                    port: port as u32,
                    flow,
                    psn,
                    class: DropClass::Fault,
                },
            );
        }
        self.shards[0].pool.release(pkt);
    }

    /// The exact pre-sharding event loop: one queue, events (including
    /// controls) in `(at, seq)` order.
    fn step_single(&mut self) -> Option<Nanos> {
        let (at, _seq, ev) = self.shards[0].pop_next()?;
        debug_assert!(at >= self.clock);
        self.clock = at;
        self.shards[0].now = at;
        self.shards[0].events += 1;
        let Some(node_id) = ev.node() else {
            let Event::Control { token } = ev else { unreachable!("only Control is node-less") };
            // Detach the plane so it can mutate the simulator re-entrantly
            // (fail switches, flip cables, schedule more controls).
            if let Some(m) = self.fault_plane.take() {
                let mut plane = m.into_inner().unwrap();
                plane.on_control(token, self);
                self.fault_plane = Some(Mutex::new(plane));
            }
            return Some(at);
        };
        if let Event::PacketArrive { node, port, pkt } = ev {
            if self.fault_plane.is_some() && self.fault_intercept_single(node, port, pkt) {
                return Some(at);
            }
        }
        self.with_node(node_id, |node, ctx| match (node, ev) {
            (Node::Host(h), Event::PacketArrive { pkt, .. }) => h.on_packet(pkt, ctx),
            (Node::Host(h), Event::PortFree { .. }) => h.on_port_free(ctx),
            (Node::Host(h), Event::Pfc { pause, .. }) => h.on_pfc(pause, ctx),
            (Node::Host(h), Event::EndpointTimer { slot, gen, token, .. }) => {
                h.on_timer(slot, gen, token, ctx)
            }
            (Node::Switch(sw), Event::PacketArrive { port, pkt, .. }) => {
                sw.on_packet(port, pkt, ctx)
            }
            (Node::Switch(sw), Event::PortFree { port, .. }) => sw.on_port_free(port, ctx),
            (Node::Switch(sw), Event::Pfc { port, pause, .. }) => sw.on_pfc(port, pause, ctx),
            (Node::Switch(_), Event::EndpointTimer { .. }) => {
                unreachable!("switches have no endpoints")
            }
            (_, Event::Control { .. }) => unreachable!("Control handled before dispatch"),
            (Node::Empty, _) => unreachable!("event for node under processing"),
        });
        Some(at)
    }

    /// Processes one event; returns its timestamp, or `None` if idle.
    ///
    /// Sharded mode processes exactly one event too (window closes are
    /// internal) — always serial. Use [`Simulator::advance`] to let a
    /// sharded run use worker threads.
    pub fn step(&mut self) -> Option<Nanos> {
        if self.shards.len() == 1 {
            return self.step_single();
        }
        loop {
            match self.step_sharded(IDLE) {
                StepOut::Event(t) => return Some(t),
                StepOut::Closed => continue,
                StepOut::Idle => return None,
                StepOut::Limited => unreachable!("unlimited step cannot be limited"),
            }
        }
    }

    /// Processes the next event only if it is due at or before `limit`;
    /// returns `None` (without advancing) otherwise or when idle.
    pub fn step_bounded(&mut self, limit: Nanos) -> Option<Nanos> {
        if self.shards.len() == 1 {
            return match self.shards[0].next_at() {
                Some(at) if at <= limit => self.step_single(),
                _ => None,
            };
        }
        loop {
            match self.step_sharded(limit) {
                StepOut::Event(t) => return Some(t),
                StepOut::Closed => continue,
                StepOut::Idle | StepOut::Limited => return None,
            }
        }
    }

    /// Batch step: processes events up to the next completion boundary —
    /// the point after which completions are safe to drain. Unsharded this
    /// is exactly [`Simulator::step`]; sharded it runs whole lookahead
    /// windows (on worker threads when configured) and returns at a window
    /// close once completions are pending, or when idle (`None`).
    ///
    /// Event-per-step driver loops (`while sim.step().is_some()`) convert
    /// to `while sim.advance().is_some()` and keep identical observable
    /// behavior at every shard/worker count: completions surface in the
    /// same order with the same contents; only the granularity at which
    /// the loop body observes them changes (and only for `shards > 1`).
    pub fn advance(&mut self) -> Option<Nanos> {
        if self.shards.len() == 1 {
            return self.step_single();
        }
        self.pump(None, true)
    }

    /// Bounded [`Simulator::advance`]: stops (returning `None` if nothing
    /// was processed) once the next event lies past `limit`.
    pub fn advance_bounded(&mut self, limit: Nanos) -> Option<Nanos> {
        if self.shards.len() == 1 {
            return self.step_bounded(limit);
        }
        self.pump(Some(limit), true)
    }

    /// Runs until the queue is empty or the clock passes `t`.
    pub fn run_until(&mut self, t: Nanos) {
        if self.shards.len() == 1 {
            while let Some(at) = self.shards[0].next_at() {
                if at > t {
                    break;
                }
                self.step_single();
            }
            self.clock = self.clock.max(t);
            self.shards[0].now = self.shards[0].now.max(t);
            return;
        }
        self.pump(Some(t), false);
        self.clock = self.clock.max(t);
    }

    /// Runs until every event is processed or `deadline` passes. Returns
    /// true if the queue drained. On a missed deadline, an attached probe's
    /// dump (e.g. the flight-recorder ring of the last few thousand events)
    /// is printed to stderr — a stalled run leaves a trace, not a boolean.
    pub fn run_to_quiescence(&mut self, deadline: Nanos) -> bool {
        if self.shards.len() == 1 {
            while let Some(at) = self.shards[0].next_at() {
                if at > deadline {
                    if let Some(dump) = self.flight_dump() {
                        eprintln!(
                            "run_to_quiescence: deadline {deadline} missed at t={} with {} pending events\n{dump}",
                            self.clock,
                            self.shards[0].pending(),
                        );
                    }
                    return false;
                }
                self.step_single();
            }
            return true;
        }
        self.pump(Some(deadline), false);
        let pending = self.pending_events();
        if pending == 0 {
            return true;
        }
        self.flush_probes_serial();
        if let Some(dump) = self.flight_dump() {
            eprintln!(
                "run_to_quiescence: deadline {deadline} missed at t={} with {pending} pending events\n{dump}",
                self.clock,
            );
        }
        false
    }

    /// Pops the globally next completion: ascending completion time, ties
    /// broken by shard index (single-shard: plain FIFO, as ever).
    fn pop_next_completion(&mut self) -> Option<Completion> {
        if self.shards.len() == 1 {
            return self.shards[0].completions.pop_front();
        }
        let mut best: Option<(Nanos, usize)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some(c) = s.completions.front() {
                if best.is_none_or(|(at, _)| c.at < at) {
                    best = Some((c.at, i));
                }
            }
        }
        best.map(|(_, i)| self.shards[i].completions.pop_front().expect("peeked"))
    }

    /// Drains completions surfaced since the last call.
    ///
    /// Allocates a fresh `Vec` per call; event-per-step loops should prefer
    /// [`Simulator::for_each_completion`].
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let mut v = Vec::new();
        while let Some(c) = self.pop_next_completion() {
            v.push(c);
        }
        v
    }

    /// Invokes `f` on each completion surfaced since the last drain,
    /// without allocating.
    pub fn for_each_completion(&mut self, mut f: impl FnMut(Completion)) {
        while let Some(c) = self.pop_next_completion() {
            f(c);
        }
    }

    /// Drains completions into `buf` (cleared first), reusing its storage —
    /// for loops that must keep `&mut Simulator` free while consuming them.
    pub fn drain_completions_into(&mut self, buf: &mut Vec<Completion>) {
        buf.clear();
        while let Some(c) = self.pop_next_completion() {
            buf.push(c);
        }
    }

    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.pending()).sum::<usize>() + self.controls.len()
    }

    /// Total events dispatched so far (controls included).
    pub fn events_processed(&self) -> u64 {
        self.ctl_events + self.shards.iter().map(|s| s.events).sum::<u64>()
    }

    /// High-water mark of the pending-event set. Sharded runs report the
    /// sum of per-shard high-water marks — an upper bound on the true
    /// simultaneous peak (shards may peak at different times).
    pub fn peak_pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.peak_pending).sum()
    }

    /// Aggregated fabric counters across all switches, plus the engine's
    /// fault-plane wire losses (merged across shards).
    pub fn net_stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for s in &self.shards {
            total.merge(&s.fault_stats);
        }
        for n in &self.nodes {
            if let Node::Switch(s) = n {
                total.merge(&s.stats);
            }
        }
        total
    }

    /// Merge of every endpoint's transport counters across all hosts (both
    /// senders and receivers) — the aggregate the conservation identities
    /// are stated over.
    pub fn all_endpoint_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for n in &self.nodes {
            if let Node::Host(h) = n {
                for ep in h.endpoints() {
                    total.merge(&ep.stats());
                }
                // Removed endpoints' lifetime counters, so churn never
                // breaks the conservation identities.
                total.merge(h.retired_stats());
            }
        }
        total
    }

    /// Cross-validates fabric and endpoint counters (see
    /// [`crate::stats::Conservation`]). Pass `quiesced = true` after a
    /// drained [`Simulator::run_to_quiescence`] for exact accounting; on a
    /// violation an attached probe's dump is printed to stderr.
    pub fn check_conservation(&self, quiesced: bool) -> crate::stats::Conservation {
        let mut c = crate::stats::Conservation::check(
            &self.net_stats(),
            &self.all_endpoint_stats(),
            quiesced,
        );
        // Pool leak check: at quiescence every handle must have been taken
        // or released — a live slot means some path dropped a PktRef
        // without freeing it. Sharded runs check every shard's pool.
        let live: usize = self.shards.iter().map(|s| s.pool.len()).sum();
        if quiesced && live > 0 {
            let cap: usize = self.shards.iter().map(|s| s.pool.capacity()).sum();
            c.violations.push(format!(
                "packet pool leaks {live} live slot(s) at quiescence (capacity {cap})"
            ));
        }
        if !c.is_ok() {
            if let Some(dump) = self.flight_dump() {
                eprintln!("conservation violated:\n{}\n{dump}", c.violations.join("\n"));
            }
        }
        c
    }

    /// Transport counters of `flow`'s endpoint on `host`.
    pub fn endpoint_stats(&self, host: NodeId, flow: FlowId) -> TransportStats {
        self.host(host)
            .endpoint(flow)
            .unwrap_or_else(|| panic!("no endpoint for {flow:?} on {host:?}"))
            .stats()
    }

    /// Whether `flow`'s endpoint on `host` reports itself finished.
    pub fn endpoint_done(&self, host: NodeId, flow: FlowId) -> bool {
        self.host(host).endpoint(flow).map(|e| e.is_done()).unwrap_or(true)
    }

    /// Port count of `id` when it names a switch, `None` for hosts and
    /// out-of-range ids — the non-panicking topology query fault-plan
    /// validation runs against untrusted (loaded) plans.
    pub fn switch_port_count(&self, id: NodeId) -> Option<usize> {
        match self.nodes.get(id.0 as usize) {
            Some(Node::Switch(s)) => Some(s.ports.len()),
            _ => None,
        }
    }

    // --- Topology-fault mechanisms (driven by an installed `FaultPlane`) ---

    /// The two unidirectional links of the full-duplex cable on `sw`'s
    /// `port`, each named by its *arrival* endpoint `(node, port)` — the key
    /// a [`FaultPlane`] sees in `on_arrival`. `[0]` is the direction leaving
    /// `sw`, `[1]` the direction arriving at `sw`.
    pub fn cable_arrival_keys(&self, sw: NodeId, port: PortId) -> [(NodeId, PortId); 2] {
        let link = self.switch(sw).ports[port].link;
        [(link.to, link.to_port), (sw, port)]
    }

    /// Downs (`up = false`) or restores both directions of the cable on
    /// `sw`'s `port`. Down ports stop serving their egress queues — traffic
    /// hashed onto them backs up, which is exactly what lets adaptive
    /// routing route around the fault while static ECMP blackholes.
    /// Restoring kicks both ends so backed-up queues drain immediately.
    /// Packets already in flight on the wire are *not* touched; pair this
    /// with a [`FaultPlane`] dropping arrivals on the same keys for full
    /// link-down semantics.
    pub fn set_cable_up(&mut self, sw: NodeId, port: PortId, up: bool) {
        let link = self.switch(sw).ports[port].link;
        self.switch_mut(sw).set_port_up(port, up);
        match &mut self.nodes[link.to.0 as usize] {
            Node::Host(h) => h.link_up = up,
            Node::Switch(s) => s.set_port_up(link.to_port, up),
            Node::Empty => unreachable!("cable peer under processing"),
        }
        if up {
            self.kick_switch_port(sw, port);
            match &self.nodes[link.to.0 as usize] {
                Node::Host(_) => self.kick(link.to),
                Node::Switch(_) => self.kick_switch_port(link.to, link.to_port),
                Node::Empty => unreachable!(),
            }
        }
    }

    /// Degrades (or restores) both directions of the cable on `sw`'s `port`
    /// to the given rate and propagation delay. Packets already serializing
    /// keep their old timing; subsequent transmissions use the new one.
    ///
    /// Sharded runs refuse to *shorten* a cross-shard cable below the
    /// engine lookahead — the safe horizon was computed from the build-time
    /// minimum (debug assertion; release builds would lose determinism, not
    /// memory safety).
    pub fn set_cable_params(&mut self, sw: NodeId, port: PortId, gbps: f64, delay: Nanos) {
        let (to, to_port) = {
            let l = &mut self.switch_mut(sw).ports[port].link;
            l.gbps = gbps;
            l.delay = delay;
            (l.to, l.to_port)
        };
        debug_assert!(
            self.shards.len() == 1
                || self.shard_of(sw) == self.shard_of(to)
                || delay >= self.lookahead,
            "degrading a cross-shard cable below the engine lookahead ({} < {})",
            delay,
            self.lookahead,
        );
        match &mut self.nodes[to.0 as usize] {
            Node::Host(h) => {
                if let Some(l) = h.link.as_mut() {
                    l.gbps = gbps;
                    l.delay = delay;
                }
            }
            Node::Switch(s) => {
                // `to_port` is the peer's egress back toward us — the
                // reverse direction of this same cable (see
                // `connect_switches`), so parallel cables stay distinct.
                let back = &mut s.ports[to_port].link;
                debug_assert_eq!(back.to, sw);
                back.gbps = gbps;
                back.delay = delay;
            }
            Node::Empty => unreachable!("cable peer under processing"),
        }
    }

    /// Fails switch `sw` in place: every queued packet is drained and
    /// booked as a fault drop (by class), PFC state is cleared with RESUMEs
    /// sent upstream so no neighbour stays wedged, and all ports go down.
    /// The node object survives — arrivals while failed are the
    /// [`FaultPlane`]'s to drop.
    pub fn fail_switch(&mut self, sw: NodeId) {
        self.with_node(sw, |n, ctx| {
            if let Node::Switch(s) = n {
                s.fail(ctx);
            }
        });
    }

    /// Recovers a failed switch: ports come back up (queues are empty —
    /// `fail` drained them — so there is nothing to kick until traffic
    /// arrives). Routing and configuration are unchanged.
    pub fn recover_switch(&mut self, sw: NodeId) {
        let s = self.switch_mut(sw);
        for p in 0..s.ports.len() {
            s.set_port_up(p, true);
        }
    }

    /// The fabric's PFC pause-dependency edges, one `(blocked, blocker)`
    /// pair per asserted pause: switch `s` holding ingress `p` over xoff
    /// has PAUSEd its upstream peer `u`, so `u`'s egress toward `s` cannot
    /// drain until `s` does — `u` waits on `s`. A cycle in this graph is
    /// the classic PFC deadlock (every switch in the cycle waits on the
    /// next); the `dcp-check` watchdog runs cycle detection over it.
    /// Edges are emitted in node/port order, so the export is
    /// deterministic.
    pub fn pause_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for n in &self.nodes {
            if let Node::Switch(s) = n {
                for p in s.paused_ingress_ports() {
                    if let Some((u, _)) = s.ports[p].peer {
                        edges.push((u, s.id));
                    }
                }
            }
        }
        edges
    }

    /// Gives `sw`'s egress `port` a transmission opportunity now (used
    /// after a cable comes back up with a backlog).
    pub fn kick_switch_port(&mut self, sw: NodeId, port: PortId) {
        self.with_node(sw, |n, ctx| {
            if let Node::Switch(s) = n {
                s.try_transmit(port, ctx);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression lock for the handle-based event layout: every calendar
    /// queue entry copy must stay within 32 bytes. Growing a variant past
    /// this puts struct traffic back on the hottest path in the simulator.
    #[test]
    fn event_stays_handle_sized() {
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }
}
