//! Slab arena for in-flight packets.
//!
//! Every packet that exists inside the fabric — queued at a switch port,
//! riding a propagation event, staged in a host NIC — lives in one
//! [`PacketPool`] owned by the simulator, and moves through the hot path as
//! an 8-byte [`PktRef`] instead of a ~200-byte struct. That keeps calendar
//! queue buckets, heapify swaps and `VecDeque` rotations down to
//! handle-sized memcpys, which is where the event-loop working set comes
//! from at 256-host CLOS scale.
//!
//! # Determinism
//!
//! The free-list is a LIFO `Vec`: `take`/`release` push the slot index,
//! `insert` pops it. Slot assignment is therefore a pure function of the
//! order of pool calls, which is itself a pure function of event order —
//! same-seed runs recycle identical slots in identical order, so traces
//! stay byte-identical (asserted by `pool_free_list_is_deterministic` and
//! the repo-wide determinism suite).
//!
//! # Handle safety
//!
//! `PktRef` carries the slot's generation; `insert` bumps it each time a
//! slot is recycled. Debug builds check the generation on every access, so
//! use-after-free (touching a handle after `take`/`release`) panics instead
//! of silently reading whatever packet now occupies the slot. Release
//! builds skip the check on the hot path; the quiescence leak check
//! (`Simulator::check_conservation`) still catches handles that were never
//! returned.

use crate::packet::Packet;

/// Generational handle to a pooled [`Packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PktRef {
    idx: u32,
    gen: u32,
}

impl PktRef {
    /// Slot index — for diagnostics only; the pool is the sole authority.
    pub fn idx(self) -> u32 {
        self.idx
    }
}

struct Slot {
    gen: u32,
    pkt: Option<Packet>,
}

/// Slab arena with a LIFO free-list; owns every in-flight [`Packet`].
#[derive(Default)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl PacketPool {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        PacketPool { slots: Vec::with_capacity(n), free: Vec::with_capacity(n), live: 0 }
    }

    /// Moves `pkt` into the pool and returns its handle. Recycles the most
    /// recently freed slot first (LIFO — deterministic and cache-warm).
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> PktRef {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.pkt.is_none(), "free-list slot still occupied");
                slot.pkt = Some(pkt);
                PktRef { idx, gen: slot.gen }
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, pkt: Some(pkt) });
                PktRef { idx, gen: 0 }
            }
        }
    }

    /// Moves the packet out of the pool, freeing the slot. The handle (and
    /// any copy of it) is dead afterwards.
    ///
    /// # Panics
    /// Debug builds panic on a stale or double-taken handle.
    #[inline]
    pub fn take(&mut self, r: PktRef) -> Packet {
        let slot = &mut self.slots[r.idx as usize];
        debug_assert_eq!(slot.gen, r.gen, "stale PktRef: slot {} was recycled", r.idx);
        let pkt = slot.pkt.take().expect("PktRef points at an empty slot");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
        pkt
    }

    /// Frees the slot, dropping the packet (a switch drop decision).
    #[inline]
    pub fn release(&mut self, r: PktRef) {
        let _ = self.take(r);
    }

    /// Borrows the packet behind `r`.
    #[inline]
    pub fn get(&self, r: PktRef) -> &Packet {
        let slot = &self.slots[r.idx as usize];
        debug_assert_eq!(slot.gen, r.gen, "stale PktRef: slot {} was recycled", r.idx);
        slot.pkt.as_ref().expect("PktRef points at an empty slot")
    }

    /// Mutably borrows the packet behind `r` (trim-in-place, ECN marking).
    #[inline]
    pub fn get_mut(&mut self, r: PktRef) -> &mut Packet {
        let slot = &mut self.slots[r.idx as usize];
        debug_assert_eq!(slot.gen, r.gen, "stale PktRef: slot {} was recycled", r.idx);
        slot.pkt.as_mut().expect("PktRef points at an empty slot")
    }

    /// Number of live (inserted, not yet taken) packets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no packet is in flight — the quiescence invariant.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever created (high-water mark of in-flight packets).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl std::ops::Index<PktRef> for PacketPool {
    type Output = Packet;

    #[inline]
    fn index(&self, r: PktRef) -> &Packet {
        self.get(r)
    }
}

impl std::ops::IndexMut<PktRef> for PacketPool {
    #[inline]
    fn index_mut(&mut self, r: PktRef) -> &mut Packet {
        self.get_mut(r)
    }
}

impl std::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketPool")
            .field("live", &self.live)
            .field("slots", &self.slots.len())
            .field("free", &self.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PktDesc, PktExt};
    use dcp_rdma::headers::*;

    fn pkt(uid: u64) -> Packet {
        Packet {
            uid,
            flow: FlowId(1),
            header: PacketHeader {
                eth: EthHeader::new(MacAddr::from_host(0), MacAddr::from_host(1)),
                ip: Ipv4Header::new(5, 9, DcpTag::Data, 0),
                udp: UdpHeader::roce(100, 0),
                bth: Bth { opcode: RdmaOpcode::WriteOnly, dest_qpn: 1, psn: 7, ack_req: false },
                dcp: None,
                reth: None,
                aeth: None,
            },
            payload_len: 0,
            desc: PktDesc::NONE,
            ext: PktExt::None,
            sent_at: 0,
            is_retx: false,
            retx_cause: dcp_telemetry::RetxCause::Unknown,
            ingress: 0,
        }
    }

    #[test]
    fn handle_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<PktRef>(), 8);
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        let b = pool.insert(pkt(2));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool[a].uid, 1);
        assert_eq!(pool.take(b).uid, 2);
        assert_eq!(pool.take(a).uid, 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn free_list_is_lifo_and_deterministic() {
        let run = || {
            let mut pool = PacketPool::new();
            let a = pool.insert(pkt(1));
            let b = pool.insert(pkt(2));
            pool.release(a);
            pool.release(b);
            // LIFO: b's slot comes back first, then a's.
            let c = pool.insert(pkt(3));
            let d = pool.insert(pkt(4));
            (c.idx(), d.idx(), b.idx(), a.idx())
        };
        let (c1, d1, b1, a1) = run();
        assert_eq!((c1, d1), (b1, a1), "most recently freed slot is reused first");
        assert_eq!(run(), run(), "same call order recycles identical slots");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale PktRef")]
    fn stale_handle_panics_in_debug() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        pool.release(a);
        let _b = pool.insert(pkt(2)); // recycles a's slot with a new gen
        let _ = pool[a]; // use-after-free
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn double_take_panics_in_debug() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        let _ = pool.take(a);
        let _ = pool.take(a);
    }

    #[test]
    fn capacity_tracks_high_water_mark() {
        let mut pool = PacketPool::new();
        let refs: Vec<_> = (0..8).map(|i| pool.insert(pkt(i))).collect();
        for r in refs {
            pool.release(r);
        }
        for i in 0..8 {
            pool.insert(pkt(i));
        }
        assert_eq!(pool.capacity(), 8, "steady-state reuse creates no new slots");
    }
}
