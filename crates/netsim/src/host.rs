//! The host NIC model: endpoint registry, QP scheduling and wire pacing.
//!
//! A host owns one full-duplex link (single-NIC servers, as in the paper's
//! simulations). Its transmit side implements the RNIC QP Scheduler of §4.3
//! as a round-robin over endpoints with a per-round byte quota
//! (`round_quota`, default 16 KB ≈ the PCIe BDP), pulling packets from
//! transports only when the wire is free.

use crate::endpoint::{Completion, CompletionKind, Endpoint, EndpointCtx};
use crate::link::Link;
use crate::packet::{FlowId, NodeId, PortId};
use crate::pool::PktRef;
use crate::sim::{Event, NodeCtx};
use crate::time::{tx_time, Nanos};
use dcp_rdma::qp::WorkReqOp;
use dcp_telemetry::ProbeEvent;
use std::collections::HashMap;

/// Default per-round quota of the QP scheduler (§4.3: 16 KB ≈ PCIe BDP).
pub const ROUND_QUOTA: i64 = 16 * 1024;

pub struct Host {
    pub id: NodeId,
    /// Outgoing link; set when the topology wires the host up.
    pub link: Option<Link>,
    /// Cable state (fault plane): a down NIC keeps accepting posts but
    /// never transmits; the simulator kicks it when the cable is restored.
    pub link_up: bool,
    endpoints: Vec<Box<dyn Endpoint>>,
    /// Flow of each endpoint, parallel to `endpoints` (probe labelling).
    flows: Vec<FlowId>,
    by_flow: HashMap<FlowId, usize>,
    busy: bool,
    /// PFC PAUSE received from the ToR.
    pub paused: bool,
    cursor: usize,
    quota_left: i64,
    round_quota: i64,
    /// Scratch buffers reused across `run_endpoint` calls so the steady
    /// state allocates nothing per event.
    timers_scratch: Vec<(Nanos, u64)>,
    comps_scratch: Vec<Completion>,
}

impl Host {
    pub fn new(id: NodeId) -> Self {
        Host {
            id,
            link: None,
            link_up: true,
            endpoints: Vec::new(),
            flows: Vec::new(),
            by_flow: HashMap::new(),
            busy: false,
            paused: false,
            cursor: 0,
            quota_left: ROUND_QUOTA,
            round_quota: ROUND_QUOTA,
            timers_scratch: Vec::new(),
            comps_scratch: Vec::new(),
        }
    }

    /// Registers a transport endpoint for `flow`; packets of that flow
    /// arriving at this host are delivered to it.
    pub fn install(&mut self, flow: FlowId, ep: Box<dyn Endpoint>) -> usize {
        let ix = self.endpoints.len();
        self.endpoints.push(ep);
        self.flows.push(flow);
        let prev = self.by_flow.insert(flow, ix);
        assert!(prev.is_none(), "flow {flow:?} already installed on host {:?}", self.id);
        ix
    }

    pub fn endpoint(&self, flow: FlowId) -> Option<&dyn Endpoint> {
        self.by_flow.get(&flow).map(|&ix| self.endpoints[ix].as_ref())
    }

    pub fn endpoint_mut(&mut self, flow: FlowId) -> Option<&mut Box<dyn Endpoint>> {
        self.by_flow.get(&flow).map(|&ix| &mut self.endpoints[ix])
    }

    pub fn endpoints(&self) -> impl Iterator<Item = &dyn Endpoint> {
        self.endpoints.iter().map(|e| e.as_ref())
    }

    /// Posts a Work Request on the sender endpoint of `flow`.
    pub fn post(&mut self, flow: FlowId, wr_id: u64, op: WorkReqOp, len: u64) {
        let ep = self.endpoint_mut(flow).unwrap_or_else(|| panic!("no endpoint for flow {flow:?}"));
        ep.post(wr_id, op, len);
    }

    fn run_endpoint<R>(
        &mut self,
        ix: usize,
        ctx: &mut NodeCtx,
        f: impl FnOnce(&mut dyn Endpoint, &mut EndpointCtx) -> R,
    ) -> R {
        let mut timers = std::mem::take(&mut self.timers_scratch);
        let mut comps = std::mem::take(&mut self.comps_scratch);
        timers.clear();
        comps.clear();
        // Transport-level probe events are derived by diffing the endpoint's
        // own counters around the callback — one extra stats() call per
        // callback when a probe is attached, nothing at all otherwise.
        let before = ctx.probe.is_some().then(|| self.endpoints[ix].stats());
        let r = {
            let mut ectx = EndpointCtx {
                now: ctx.now,
                pool: ctx.pool,
                timers: &mut timers,
                completions: &mut comps,
                rng: ctx.rng,
                probe: ctx.probe.as_deref_mut(),
            };
            f(self.endpoints[ix].as_mut(), &mut ectx)
        };
        if let Some(before) = before {
            let after = self.endpoints[ix].stats();
            let flow = self.flows[ix].0;
            let node = self.id.0;
            for _ in before.timeouts..after.timeouts {
                ctx.emit(|| ProbeEvent::Timeout { node, flow });
            }
            for _ in before.ho_received..after.ho_received {
                ctx.emit(|| ProbeEvent::HoReceived { node, flow });
            }
            for _ in before.duplicates..after.duplicates {
                ctx.emit(|| ProbeEvent::Duplicate { node, flow });
            }
            for c in &comps {
                if c.kind == CompletionKind::RecvComplete {
                    ctx.emit(|| ProbeEvent::Delivery {
                        node,
                        flow: c.flow.0,
                        wr_id: c.wr_id,
                        bytes: c.bytes,
                    });
                }
            }
        }
        for &(at, token) in &timers {
            ctx.out.push((at, Event::EndpointTimer { node: self.id, ep: ix, token }));
        }
        ctx.completions.extend(comps.drain(..));
        self.timers_scratch = timers;
        self.comps_scratch = comps;
        r
    }

    /// A packet addressed to this host arrived.
    pub fn on_packet(&mut self, pr: PktRef, ctx: &mut NodeCtx) {
        let flow = ctx.pool[pr].flow;
        let Some(&ix) = self.by_flow.get(&flow) else {
            debug_assert!(false, "host {:?} got packet for unknown flow {:?}", self.id, flow);
            ctx.pool.release(pr);
            return;
        };
        self.run_endpoint(ix, ctx, |ep, ectx| ep.on_packet(pr, ectx));
        self.try_transmit(ctx);
    }

    /// A timer for endpoint `ep` fired.
    pub fn on_timer(&mut self, ep: usize, token: u64, ctx: &mut NodeCtx) {
        self.run_endpoint(ep, ctx, |e, ectx| e.on_timer(token, ectx));
        self.try_transmit(ctx);
    }

    /// The wire finished serializing the previous packet.
    pub fn on_port_free(&mut self, ctx: &mut NodeCtx) {
        self.busy = false;
        self.try_transmit(ctx);
    }

    /// PFC PAUSE/RESUME from the ToR.
    pub fn on_pfc(&mut self, pause: bool, ctx: &mut NodeCtx) {
        self.paused = pause;
        if !pause {
            self.try_transmit(ctx);
        }
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.endpoints.len().max(1);
        self.quota_left = self.round_quota;
    }

    /// QP scheduler: offer wire time round-robin with a byte quota.
    pub fn try_transmit(&mut self, ctx: &mut NodeCtx) {
        if self.busy || self.paused || !self.link_up || self.endpoints.is_empty() {
            return;
        }
        let Some(link) = self.link else { return };
        let n = self.endpoints.len();
        let mut attempts = 0;
        while attempts < n {
            let ix = self.cursor;
            if !self.endpoints[ix].has_pending() {
                self.advance();
                attempts += 1;
                continue;
            }
            let pulled = self.run_endpoint(ix, ctx, |ep, ectx| ep.pull(ectx));
            match pulled {
                Some(pr) => {
                    let (bytes, is_data, is_retx, flow, psn, cause) = {
                        let pkt = &mut ctx.pool[pr];
                        pkt.sent_at = ctx.now;
                        (
                            pkt.wire_bytes(),
                            pkt.is_data(),
                            pkt.is_retx,
                            pkt.flow.0,
                            pkt.psn(),
                            pkt.retx_cause,
                        )
                    };
                    if ctx.probe.is_some() && is_data {
                        let node = self.id.0;
                        let wire = bytes as u32;
                        if is_retx {
                            ctx.emit(|| ProbeEvent::Retx { node, flow, psn, bytes: wire, cause });
                        } else {
                            ctx.emit(|| ProbeEvent::Tx { node, flow, psn, bytes: wire });
                        }
                    }
                    self.quota_left -= bytes as i64;
                    if self.quota_left <= 0 {
                        self.advance();
                    }
                    let tx = tx_time(bytes, link.gbps);
                    self.busy = true;
                    ctx.out.push((ctx.now + tx, Event::PortFree { node: self.id, port: 0 }));
                    ctx.out.push((
                        ctx.now + tx + link.delay,
                        Event::PacketArrive { node: link.to, port: link.to_port, pkt: pr },
                    ));
                    return;
                }
                None => {
                    // Pacing: the endpoint owes us a timer. Move on.
                    self.advance();
                    attempts += 1;
                }
            }
        }
    }

    /// Ingress port of a host is always 0 (single NIC).
    pub const PORT: PortId = 0;
}
