//! The host NIC model: connection table, QP scheduling and wire pacing.
//!
//! A host owns one full-duplex link (single-NIC servers, as in the paper's
//! simulations). Its connection plane is built for O(active), not
//! O(installed), cost — the regime the paper's Table 4 argues DCP enables
//! (millions of mostly-idle QPs per host):
//!
//! * Endpoints live in a **slab** addressed by [`QpRef`] `{slot, gen}`;
//!   `install`/`remove` recycle slots through a free list, so connection
//!   churn allocates nothing in steady state, and the generation counter
//!   makes stale references (a timer armed by a previous occupant of the
//!   slot) detectably dead instead of silently misdelivered.
//! * `FlowId → slot` resolves through a **direct-index page table** (flow
//!   ids are dense), so the per-packet delivery path is two array loads —
//!   no hashing.
//! * The transmit side implements the RNIC QP Scheduler of §4.3 as a
//!   round-robin with a per-round byte quota (`round_quota`, default 16 KB
//!   ≈ the PCIe BDP) over the **ready set** ([`crate::ready::ReadySet`]):
//!   only endpoints with `has_pending()` are visited, preserving the exact
//!   cyclic order and quota semantics of the full scan (the determinism
//!   suite locks byte-identical traces).

use crate::endpoint::{Completion, CompletionKind, Endpoint, EndpointCtx};
use crate::link::Link;
use crate::packet::{FlowId, NodeId, PortId};
use crate::pool::PktRef;
use crate::ready::ReadySet;
use crate::sim::{Event, NodeCtx};
use crate::stats::TransportStats;
use crate::time::{tx_time, Nanos};
use dcp_rdma::qp::WorkReqOp;
use dcp_telemetry::ProbeEvent;

/// Default per-round quota of the QP scheduler (§4.3: 16 KB ≈ PCIe BDP).
pub const ROUND_QUOTA: i64 = 16 * 1024;

/// Byte-served counters rescale (halve) past this, like the switch WRR —
/// ratios survive, overflow can't happen.
const SERVED_RESCALE: u64 = 1 << 50;

/// Per-tenant weighted-round-robin state at host egress. Engaged only by
/// [`Host::set_tenant_weights`]; hosts that never call it keep the
/// historical single-class scheduler byte-for-byte (the determinism suite
/// locks those traces).
///
/// The pick rule generalizes the switch's ctrl-vs-data WRR: among tenants
/// with ready QPs, serve the one with the smallest `served/weight` (ties to
/// the lower tenant id), so over any busy interval tenant byte shares
/// converge to the weight vector regardless of per-tenant QP counts.
struct HostQos {
    /// Relative egress weights; tenants beyond the table get weight 1.
    weights: Vec<u64>,
    /// Bytes served per tenant (rescaled in lockstep).
    served: Vec<u64>,
    /// Within-tenant round-robin cursor, one per tenant.
    cursors: Vec<u32>,
    /// Within-tenant byte quota, mirroring the single-class `quota_left`.
    quotas: Vec<i64>,
    /// Ready-slot count per tenant, maintained incrementally so the pick
    /// never scans tenants with nothing to send.
    ready_per: Vec<u32>,
}

impl HostQos {
    fn weight(&self, t: usize) -> u64 {
        self.weights.get(t).copied().unwrap_or(1).max(1)
    }

    /// Grows the per-tenant vectors to cover tenant `t`.
    fn ensure(&mut self, t: usize, round_quota: i64) {
        if t >= self.served.len() {
            self.served.resize(t + 1, 0);
            self.cursors.resize(t + 1, 0);
            self.quotas.resize(t + 1, round_quota);
            self.ready_per.resize(t + 1, 0);
        }
    }

    /// The ready tenant with the smallest served/weight ratio, compared by
    /// cross-multiplication (exact in u128; no float drift in the digest).
    fn pick(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for t in 0..self.ready_per.len() {
            if self.ready_per[t] == 0 {
                continue;
            }
            best = match best {
                None => Some(t),
                Some(b) => {
                    let lhs = self.served[t] as u128 * self.weight(b) as u128;
                    let rhs = self.served[b] as u128 * self.weight(t) as u128;
                    if lhs < rhs {
                        Some(t)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }
}

/// Entries per page of the `FlowId → slot` table.
const PAGE: usize = 256;
/// "No slot" sentinel in page-table entries.
const NO_SLOT: u32 = u32::MAX;

/// Generational handle to an installed endpoint — the PR-3 pool pattern
/// applied to QPs. A `QpRef` held across a `remove` never resurrects: the
/// slot's generation moved on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpRef {
    pub slot: u32,
    pub gen: u32,
}

/// One slab slot: the endpoint (when occupied), the flow it serves and the
/// generation stamp that invalidates old handles.
struct QpEntry {
    gen: u32,
    flow: FlowId,
    ep: Option<Box<dyn Endpoint>>,
}

pub struct Host {
    pub id: NodeId,
    /// Outgoing link; set when the topology wires the host up.
    pub link: Option<Link>,
    /// Cable state (fault plane): a down NIC keeps accepting posts but
    /// never transmits; the simulator kicks it when the cable is restored.
    pub link_up: bool,
    /// Slab of connection slots; freed slots are reused LIFO.
    slots: Vec<QpEntry>,
    free: Vec<u32>,
    /// Occupied-slot count.
    live: usize,
    /// `FlowId → slot` pages (`flow.0 / PAGE` selects the page); dense flow
    /// ids make this a direct index, no per-packet hashing.
    pages: Vec<Option<Box<[u32; PAGE]>>>,
    /// Counters of removed endpoints, merged at removal so conservation
    /// stays exact under churn.
    retired: TransportStats,
    busy: bool,
    /// PFC PAUSE received from the ToR.
    pub paused: bool,
    /// Slots whose endpoint currently has something to send.
    ready: ReadySet,
    cursor: u32,
    quota_left: i64,
    round_quota: i64,
    /// Tenant tag per slot (parallel to `slots`; 0 = default tenant). Tags
    /// are inert until [`Host::set_tenant_weights`] engages QoS.
    tenant_of: Vec<u8>,
    /// Per-tenant WRR state; `None` keeps the historical scheduler.
    qos: Option<HostQos>,
    /// Scratch buffers reused across `run_endpoint` calls so the steady
    /// state allocates nothing per event.
    timers_scratch: Vec<(Nanos, u64)>,
    comps_scratch: Vec<Completion>,
}

impl Host {
    pub fn new(id: NodeId) -> Self {
        Host {
            id,
            link: None,
            link_up: true,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            pages: Vec::new(),
            retired: TransportStats::default(),
            busy: false,
            paused: false,
            ready: ReadySet::new(),
            cursor: 0,
            quota_left: ROUND_QUOTA,
            round_quota: ROUND_QUOTA,
            tenant_of: Vec::new(),
            qos: None,
            timers_scratch: Vec::new(),
            comps_scratch: Vec::new(),
        }
    }

    /// Engages per-tenant WRR at this host's egress: `weights[t]` is tenant
    /// `t`'s relative share (tenants beyond the table weigh 1). Hosts that
    /// never call this keep the single-class scheduler byte-identically.
    /// Safe to call mid-run; ready counts are rebuilt from the slab.
    pub fn set_tenant_weights(&mut self, weights: &[u64]) {
        let mut q = HostQos {
            weights: weights.to_vec(),
            served: Vec::new(),
            cursors: Vec::new(),
            quotas: Vec::new(),
            ready_per: Vec::new(),
        };
        let max_t = self
            .tenant_of
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(weights.len().saturating_sub(1) as u8);
        q.ensure(max_t as usize, self.round_quota);
        for slot in 0..self.slots.len() {
            if self.ready.contains(slot) {
                q.ready_per[self.tenant_of[slot] as usize] += 1;
            }
        }
        self.qos = Some(q);
    }

    /// Tags `flow`'s QP with its tenant. A no-op for scheduling until
    /// [`Host::set_tenant_weights`] engages QoS; tags are always recorded
    /// so QoS can also be engaged mid-run.
    pub fn set_flow_tenant(&mut self, flow: FlowId, tenant: u8) {
        let slot =
            self.slot_of(flow).unwrap_or_else(|| panic!("no endpoint for flow {flow:?}")) as usize;
        let old = self.tenant_of[slot];
        if old == tenant {
            return;
        }
        if let Some(q) = &mut self.qos {
            q.ensure(tenant as usize, self.round_quota);
            if self.ready.contains(slot) {
                q.ready_per[old as usize] -= 1;
                q.ready_per[tenant as usize] += 1;
            }
        }
        self.tenant_of[slot] = tenant;
    }

    /// The tenant tag of `flow`'s QP, if installed.
    pub fn flow_tenant(&self, flow: FlowId) -> Option<u8> {
        Some(self.tenant_of[self.slot_of(flow)? as usize])
    }

    /// Slot serving `flow`, through the page table.
    #[inline]
    fn slot_of(&self, flow: FlowId) -> Option<u32> {
        let f = flow.0 as usize;
        match self.pages.get(f / PAGE)?.as_deref() {
            Some(page) => {
                let s = page[f % PAGE];
                (s != NO_SLOT).then_some(s)
            }
            None => None,
        }
    }

    fn map_flow(&mut self, flow: FlowId, slot: u32) {
        let f = flow.0 as usize;
        let p = f / PAGE;
        if p >= self.pages.len() {
            self.pages.resize_with(p + 1, || None);
        }
        let page = self.pages[p].get_or_insert_with(|| Box::new([NO_SLOT; PAGE]));
        assert!(page[f % PAGE] == NO_SLOT, "flow {flow:?} already installed on host {:?}", self.id);
        page[f % PAGE] = slot;
    }

    fn unmap_flow(&mut self, flow: FlowId) {
        let f = flow.0 as usize;
        let page = self.pages[f / PAGE].as_deref_mut().expect("mapped flow has a page");
        debug_assert_ne!(page[f % PAGE], NO_SLOT);
        page[f % PAGE] = NO_SLOT;
    }

    /// Registers a transport endpoint for `flow`; packets of that flow
    /// arriving at this host are delivered to it. Returns the generational
    /// handle; reuses a freed slot when one exists.
    pub fn install(&mut self, flow: FlowId, ep: Box<dyn Endpoint>) -> QpRef {
        let slot = match self.free.pop() {
            Some(s) => {
                let e = &mut self.slots[s as usize];
                debug_assert!(e.ep.is_none());
                e.flow = flow;
                e.ep = Some(ep);
                // Recycled slots start over in the default tenant; the
                // ready bit is clear, so no QoS count moves.
                self.tenant_of[s as usize] = 0;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(QpEntry { gen: 0, flow, ep: Some(ep) });
                self.tenant_of.push(0);
                s
            }
        };
        self.map_flow(flow, slot);
        self.live += 1;
        self.refresh_ready(slot as usize);
        QpRef { slot, gen: self.slots[slot as usize].gen }
    }

    /// Uninstalls the endpoint behind `qp`, returning it for recycling (or
    /// dropping). The slot's generation advances — timers and references
    /// stamped with the old generation are dead — and the endpoint's
    /// counters are folded into the host's retired accumulator so the
    /// conservation identities keep holding. `None` when `qp` is stale.
    pub fn remove(&mut self, qp: QpRef) -> Option<Box<dyn Endpoint>> {
        let e = self.slots.get_mut(qp.slot as usize)?;
        if e.gen != qp.gen || e.ep.is_none() {
            return None;
        }
        let ep = e.ep.take().expect("checked occupied");
        e.gen = e.gen.wrapping_add(1);
        let flow = e.flow;
        self.retired.merge(&ep.stats());
        self.unmap_flow(flow);
        self.set_ready(qp.slot as usize, false);
        self.free.push(qp.slot);
        self.live -= 1;
        Some(ep)
    }

    /// The current handle for `flow`'s endpoint, if installed.
    pub fn qp_ref(&self, flow: FlowId) -> Option<QpRef> {
        let slot = self.slot_of(flow)?;
        Some(QpRef { slot, gen: self.slots[slot as usize].gen })
    }

    pub fn endpoint(&self, flow: FlowId) -> Option<&dyn Endpoint> {
        let slot = self.slot_of(flow)?;
        self.slots[slot as usize].ep.as_deref()
    }

    pub fn endpoint_mut(&mut self, flow: FlowId) -> Option<&mut Box<dyn Endpoint>> {
        let slot = self.slot_of(flow)?;
        self.slots[slot as usize].ep.as_mut()
    }

    /// Iterates the installed endpoints (removal leaves no holes visible).
    pub fn endpoints(&self) -> impl Iterator<Item = &dyn Endpoint> {
        self.slots.iter().filter_map(|e| e.ep.as_deref())
    }

    /// Installed-endpoint count.
    pub fn installed(&self) -> usize {
        self.live
    }

    /// Counters accumulated from removed endpoints.
    pub fn retired_stats(&self) -> &TransportStats {
        &self.retired
    }

    /// Posts a Work Request on the sender endpoint of `flow`.
    pub fn post(&mut self, flow: FlowId, wr_id: u64, op: WorkReqOp, len: u64) {
        let slot = self.slot_of(flow).unwrap_or_else(|| panic!("no endpoint for flow {flow:?}"));
        self.slots[slot as usize]
            .ep
            .as_mut()
            .expect("mapped slot is occupied")
            .post(wr_id, op, len);
        self.refresh_ready(slot as usize);
    }

    /// Re-derives the ready bit of `slot` from its endpoint. Called after
    /// every endpoint callback so the bitmap always equals `has_pending()`.
    #[inline]
    fn refresh_ready(&mut self, slot: usize) {
        let pending = self.slots[slot].ep.as_deref().is_some_and(|e| e.has_pending());
        self.set_ready(slot, pending);
    }

    /// Single write path for ready bits: when QoS is engaged, the
    /// per-tenant ready counts move with the bit transitions.
    #[inline]
    fn set_ready(&mut self, slot: usize, pending: bool) {
        if let Some(q) = &mut self.qos {
            if self.ready.contains(slot) != pending {
                let t = self.tenant_of[slot] as usize;
                if pending {
                    q.ready_per[t] += 1;
                } else {
                    q.ready_per[t] -= 1;
                }
            }
        }
        self.ready.assign(slot, pending);
    }

    fn run_endpoint<R>(
        &mut self,
        slot: usize,
        ctx: &mut NodeCtx,
        f: impl FnOnce(&mut dyn Endpoint, &mut EndpointCtx) -> R,
    ) -> R {
        let mut timers = std::mem::take(&mut self.timers_scratch);
        let mut comps = std::mem::take(&mut self.comps_scratch);
        timers.clear();
        comps.clear();
        let ep = self.slots[slot].ep.as_deref_mut().expect("callback on occupied slot");
        // Transport-level probe events are derived by diffing the endpoint's
        // own counters around the callback — one extra stats() call per
        // callback when a probe is attached, nothing at all otherwise.
        let before = ctx.probe.is_some().then(|| ep.stats());
        let r = {
            let mut ectx = EndpointCtx {
                now: ctx.now,
                pool: ctx.pool,
                timers: &mut timers,
                completions: &mut comps,
                rng: ctx.rng,
                probe: ctx.probe.as_deref_mut(),
            };
            f(ep, &mut ectx)
        };
        if let Some(before) = before {
            let after = self.slots[slot].ep.as_deref().expect("still occupied").stats();
            let flow = self.slots[slot].flow.0;
            let node = self.id.0;
            for _ in before.timeouts..after.timeouts {
                ctx.emit(|| ProbeEvent::Timeout { node, flow });
            }
            for _ in before.ho_received..after.ho_received {
                ctx.emit(|| ProbeEvent::HoReceived { node, flow });
            }
            for _ in before.duplicates..after.duplicates {
                ctx.emit(|| ProbeEvent::Duplicate { node, flow });
            }
            for c in &comps {
                if c.kind == CompletionKind::RecvComplete {
                    ctx.emit(|| ProbeEvent::Delivery {
                        node,
                        flow: c.flow.0,
                        wr_id: c.wr_id,
                        bytes: c.bytes,
                    });
                }
            }
        }
        let gen = self.slots[slot].gen;
        for &(at, token) in &timers {
            ctx.out
                .push((at, Event::EndpointTimer { node: self.id, slot: slot as u32, gen, token }));
        }
        ctx.completions.extend(comps.drain(..));
        self.timers_scratch = timers;
        self.comps_scratch = comps;
        self.refresh_ready(slot);
        r
    }

    /// A packet addressed to this host arrived. Delivery is two array
    /// loads: page-table index, slab slot.
    pub fn on_packet(&mut self, pr: PktRef, ctx: &mut NodeCtx) {
        let flow = ctx.pool[pr].flow;
        let Some(slot) = self.slot_of(flow) else {
            debug_assert!(false, "host {:?} got packet for unknown flow {:?}", self.id, flow);
            ctx.pool.release(pr);
            return;
        };
        debug_assert_eq!(self.slots[slot as usize].flow, flow, "page table out of sync");
        self.run_endpoint(slot as usize, ctx, |ep, ectx| ep.on_packet(pr, ectx));
        self.try_transmit(ctx);
    }

    /// A timer stamped `{slot, gen}` fired. Stale generations — the slot
    /// was removed (and possibly refilled) since the timer was armed — are
    /// dropped here; the event was still dispatched and counted, keeping
    /// the fire-and-filter timer discipline unchanged.
    pub fn on_timer(&mut self, slot: u32, gen: u32, token: u64, ctx: &mut NodeCtx) {
        let Some(e) = self.slots.get(slot as usize) else { return };
        if e.gen != gen || e.ep.is_none() {
            return;
        }
        self.run_endpoint(slot as usize, ctx, |ep, ectx| ep.on_timer(token, ectx));
        self.try_transmit(ctx);
    }

    /// The wire finished serializing the previous packet.
    pub fn on_port_free(&mut self, ctx: &mut NodeCtx) {
        self.busy = false;
        self.try_transmit(ctx);
    }

    /// PFC PAUSE/RESUME from the ToR.
    pub fn on_pfc(&mut self, pause: bool, ctx: &mut NodeCtx) {
        self.paused = pause;
        if !pause {
            self.try_transmit(ctx);
        }
    }

    #[inline]
    fn next_slot(&self, slot: u32) -> u32 {
        let n = self.slots.len() as u32;
        if slot + 1 >= n {
            0
        } else {
            slot + 1
        }
    }

    /// QP scheduler: offer wire time round-robin with a byte quota, over
    /// the ready set only.
    ///
    /// Trace-equivalence with the historical full scan (what the
    /// determinism suite locks): the old loop visited every slot once,
    /// cyclically from the cursor, skipping idle ones — each skip advanced
    /// the cursor and reset the quota. Jumping straight to the next ready
    /// slot lands in the identical state (cursor at that slot, quota fresh
    /// unless the cursor was already there), pulls the same endpoints in
    /// the same order, and a no-transmit pass ended with the cursor back
    /// where it started (a full lap) and the quota reset — reproduced in
    /// the epilogue.
    pub fn try_transmit(&mut self, ctx: &mut NodeCtx) {
        if self.busy || self.paused || !self.link_up || self.live == 0 {
            return;
        }
        let Some(link) = self.link else { return };
        if self.qos.is_some() {
            return self.try_transmit_qos(link, ctx);
        }
        let cursor0 = self.cursor;
        // Each ready endpoint is offered at most once per pass (the old
        // scan's single lap); a `None` pull consumes one unit.
        let mut budget = self.ready.count();
        while budget > 0 {
            let Some(slot) = self.ready.next_from(self.cursor as usize) else { break };
            let slot = slot as u32;
            if slot != self.cursor {
                // Skipped over idle slots: the scan reset the quota at each.
                self.cursor = slot;
                self.quota_left = self.round_quota;
            }
            debug_assert!(
                self.slots[slot as usize].ep.as_deref().is_some_and(|e| e.has_pending()),
                "ready bit set for a non-pending endpoint"
            );
            let pulled = self.run_endpoint(slot as usize, ctx, |ep, ectx| ep.pull(ectx));
            match pulled {
                Some(pr) => {
                    let bytes = self.launch(pr, link, ctx);
                    self.quota_left -= bytes as i64;
                    if self.quota_left <= 0 {
                        self.cursor = self.next_slot(slot);
                        self.quota_left = self.round_quota;
                    }
                    return;
                }
                None => {
                    // Pacing: the endpoint owes us a timer. Move on.
                    self.cursor = self.next_slot(slot);
                    self.quota_left = self.round_quota;
                    budget -= 1;
                }
            }
        }
        // No transmit: the historical scan made exactly one full lap,
        // ending with the cursor where it began and a fresh quota.
        self.cursor = cursor0;
        self.quota_left = self.round_quota;
    }

    /// Per-tenant WRR pass: pick the most underserved ready tenant, then
    /// round-robin within it (each tenant keeps its own cursor and byte
    /// quota, so within a tenant the schedule looks exactly like the
    /// single-class scan over that tenant's QPs).
    fn try_transmit_qos(&mut self, link: Link, ctx: &mut NodeCtx) {
        let mut budget = self.ready.count();
        while budget > 0 {
            let Some(t) = self.qos.as_ref().expect("qos engaged").pick() else { break };
            // Next ready slot of tenant `t`, cyclically from its cursor.
            // Bounded: each miss steps past one ready slot of another
            // tenant, and `ready_per[t] > 0` guarantees a hit.
            let mut cur = self.qos.as_ref().expect("qos engaged").cursors[t] as usize;
            let mut found = None;
            for _ in 0..self.ready.count() {
                let Some(s) = self.ready.next_from(cur) else { break };
                if self.tenant_of[s] as usize == t {
                    found = Some(s as u32);
                    break;
                }
                cur = if s + 1 >= self.slots.len() { 0 } else { s + 1 };
            }
            let Some(slot) = found else {
                debug_assert!(false, "tenant {t} counted ready but owns no ready slot");
                break;
            };
            {
                let rq = self.round_quota;
                let q = self.qos.as_mut().expect("qos engaged");
                if slot != q.cursors[t] {
                    q.cursors[t] = slot;
                    q.quotas[t] = rq;
                }
            }
            let pulled = self.run_endpoint(slot as usize, ctx, |ep, ectx| ep.pull(ectx));
            match pulled {
                Some(pr) => {
                    let bytes = self.launch(pr, link, ctx);
                    let next = self.next_slot(slot);
                    let rq = self.round_quota;
                    let q = self.qos.as_mut().expect("qos engaged");
                    q.served[t] = q.served[t].saturating_add(bytes as u64);
                    if q.served[t] > SERVED_RESCALE {
                        for s in &mut q.served {
                            *s >>= 1;
                        }
                    }
                    q.quotas[t] -= bytes as i64;
                    if q.quotas[t] <= 0 {
                        q.cursors[t] = next;
                        q.quotas[t] = rq;
                    }
                    return;
                }
                None => {
                    // Pacing: the endpoint owes us a timer. Move on within
                    // the tenant; its served bytes are unchanged.
                    let next = self.next_slot(slot);
                    let rq = self.round_quota;
                    let q = self.qos.as_mut().expect("qos engaged");
                    q.cursors[t] = next;
                    q.quotas[t] = rq;
                    budget -= 1;
                }
            }
        }
    }

    /// Puts a pulled packet on the wire: stamps it, emits the Tx/Retx
    /// probe, occupies the port and schedules its arrival. Returns the
    /// wire bytes charged to the scheduler.
    fn launch(&mut self, pr: PktRef, link: Link, ctx: &mut NodeCtx) -> usize {
        let (bytes, is_data, is_retx, flow, psn, cause) = {
            let pkt = &mut ctx.pool[pr];
            pkt.sent_at = ctx.now;
            (pkt.wire_bytes(), pkt.is_data(), pkt.is_retx, pkt.flow.0, pkt.psn(), pkt.retx_cause)
        };
        if ctx.probe.is_some() && is_data {
            let node = self.id.0;
            let wire = bytes as u32;
            if is_retx {
                ctx.emit(|| ProbeEvent::Retx { node, flow, psn, bytes: wire, cause });
            } else {
                ctx.emit(|| ProbeEvent::Tx { node, flow, psn, bytes: wire });
            }
        }
        let tx = tx_time(bytes, link.gbps);
        self.busy = true;
        ctx.out.push((ctx.now + tx, Event::PortFree { node: self.id, port: 0 }));
        ctx.out.push((
            ctx.now + tx + link.delay,
            Event::PacketArrive { node: link.to, port: link.to_port, pkt: pr },
        ));
        bytes
    }

    /// Ingress port of a host is always 0 (single NIC).
    pub const PORT: PortId = 0;
}
