//! The fabric-side hooks the fault-injection plane plugs into.
//!
//! `dcp-netsim` owns the *mechanisms* — verdicts on arriving packets, port
//! up/down, switch fail/drain, cable parameter changes (see the
//! `Simulator::fail_switch` / `set_cable_up` / `set_cable_params` family) —
//! while the *policy* (loss models, fault schedules, recovery metrics) lives
//! in the `dcp-faults` crate, mirroring how [`dcp_telemetry::Probe`] splits
//! observation policy from the hot-path hooks. The split keeps the
//! dependency arrow pointing one way: netsim never needs to know what a
//! Gilbert–Elliott chain is.
//!
//! A [`FaultPlane`] sees every packet arrival *before* the node does and
//! rules on it ([`FaultVerdict`]); scheduled [`crate::sim::Event::Control`]
//! events hand it the whole simulator so a fault plan can flip topology
//! state (down a cable, fail a switch) at exact simulated instants, in
//! deterministic event order.

use crate::packet::{NodeId, Packet, PortId};
use crate::sim::Simulator;
use crate::time::Nanos;

/// The fault plane's ruling on a packet arriving at `(node, port)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// No fault: hand the packet to the node as usual.
    Deliver,
    /// The packet is lost on the wire: the simulator books it into
    /// [`crate::stats::NetStats`] by class (`fault_drops` for data,
    /// `ho_drops` for header-only, `ack_drops` for ACK-class) and releases
    /// the pooled handle, keeping conservation strict.
    Drop,
    /// The packet arrives corrupted — FCS/payload errors with the header
    /// still parseable, the common link-BER outcome. A trimming switch
    /// converts a corrupt DCP data packet into its 57-B header-only
    /// notification (the switch cannot forward the mangled payload, but it
    /// *can* tell the receiver what was lost — DCP's HO-based recovery
    /// applied to wire loss). Everywhere else — hosts, non-trimming
    /// switches, non-DCP packets — corruption degenerates to [`Drop`].
    Corrupt,
    /// The packet arrives *and* a duplicate copy arrives `after` ns later —
    /// the wire-duplication case (e.g. a flapping LAG member replaying a
    /// buffered frame). The simulator clones the packet, books the extra
    /// copy into `NetStats` so conservation stays strict, and delivers both;
    /// neither copy is offered to the plane again.
    Duplicate { after: Nanos },
    /// The packet is held on the wire for `by` extra ns before arriving —
    /// jitter. Later packets on the cable may legally overtake it. The
    /// re-scheduled arrival is not offered to the plane again.
    Delay { by: Nanos },
    /// The packet is stepped over by its successors: held for `by` ns,
    /// chosen adversarially rather than as jitter. Mechanically identical to
    /// [`FaultVerdict::Delay`]; the separate variant keeps adversary
    /// decisions (and shrunken repros) self-describing.
    Reorder { by: Nanos },
}

/// A fault-injection plane installed on the [`Simulator`].
///
/// Implementations are deterministic: any randomness must come from their
/// own seeded RNG streams (never the simulator's, whose draw order the
/// packet trace depends on), so a same-seed run with the same plan yields a
/// byte-identical trace regardless of `DCP_THREADS`.
pub trait FaultPlane: Send {
    /// Rules on a packet about to arrive at `node` on `port`. Called on the
    /// hot path for every `PacketArrive`; implementations should early-out
    /// when the link has no active fault.
    fn on_arrival(&mut self, now: Nanos, node: NodeId, port: PortId, pkt: &Packet) -> FaultVerdict;

    /// A scheduled [`crate::sim::Event::Control`] fired. The plane is
    /// detached from the simulator for the duration of the call, so it gets
    /// full mutable access to apply topology faults (`sim.fail_switch(..)`,
    /// `sim.set_cable_up(..)`, …) and schedule follow-up controls.
    fn on_control(&mut self, token: u64, sim: &mut Simulator);
}
