//! The simulated packet: a parsed header stack plus simulation metadata.
//!
//! Payload *bytes* are not carried (they would dominate simulation cost);
//! instead data packets carry their [`PacketDescriptor`], which — combined
//! with the deterministic pattern generator in `dcp-rdma::memory` — lets the
//! receiver perform real direct placement that integrity tests can verify.

use crate::time::Nanos;
use dcp_rdma::headers::{DcpTag, PacketHeader};
use dcp_rdma::segment::PacketDescriptor;

/// Identifies a flow (one RC connection) across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// Identifies a node (host or switch) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The IPv4 address assigned to this node (10.x.y.z from the index).
    pub fn ip(self) -> u32 {
        0x0a00_0000 | self.0
    }

    /// Inverse of [`NodeId::ip`].
    pub fn from_ip(ip: u32) -> NodeId {
        NodeId(ip & 0x00ff_ffff)
    }
}

/// Port index within a node.
pub type PortId = usize;

/// Transport-specific acknowledgment payloads.
///
/// These model fields that real implementations encode in vendor-specific
/// header extensions; keeping them as a typed enum lets every baseline speak
/// through the same fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktExt {
    None,
    /// Go-Back-N ACK: cumulative PSN (next expected).
    GbnAck {
        epsn: u32,
    },
    /// Go-Back-N NAK: receiver saw a gap; retransmit from `epsn`.
    GbnNak {
        epsn: u32,
    },
    /// IRN selective ACK: cumulative `epsn` plus the out-of-order PSN whose
    /// arrival triggered this SACK (§2.2).
    Sack {
        epsn: u32,
        sacked_psn: u32,
    },
    /// DCQCN Congestion Notification Packet.
    Cnp,
    /// MP-RDMA per-path ACK: cumulative PSN, the PSN being acknowledged, the
    /// path it travelled, and whether it was ECN-marked.
    MpAck {
        epsn: u32,
        acked_psn: u32,
        path: u16,
        ecn: bool,
    },
    /// Software-TCP cumulative ACK (byte-based).
    TcpAck {
        ack_seq: u64,
    },
}

/// A packet in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique id of this packet *copy* (retransmissions get fresh uids).
    pub uid: u64,
    pub flow: FlowId,
    pub header: PacketHeader,
    /// Payload bytes carried (0 for ACK/HO/CNP).
    pub payload_len: u32,
    /// Placement descriptor for data packets.
    pub desc: Option<PacketDescriptor>,
    /// Transport-specific extension.
    pub ext: PktExt,
    /// Time the sender put the packet on the wire (RTT estimation).
    pub sent_at: Nanos,
    /// True for retransmitted copies.
    pub is_retx: bool,
    /// Ingress port on the node currently holding the packet; maintained by
    /// the simulator for PFC ingress accounting.
    pub ingress: PortId,
}

impl Packet {
    /// Total bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.header.wire_header_bytes() + self.payload_len as usize
    }

    pub fn dcp_tag(&self) -> DcpTag {
        self.header.ip.dcp_tag()
    }

    /// Destination node, derived from the IP header.
    pub fn dst_node(&self) -> NodeId {
        NodeId::from_ip(self.header.ip.dst)
    }

    /// Source node, derived from the IP header.
    pub fn src_node(&self) -> NodeId {
        NodeId::from_ip(self.header.ip.src)
    }

    /// PSN from the BTH.
    pub fn psn(&self) -> u32 {
        self.header.bth.psn
    }

    /// MSN from the DCP extension (data/HO packets).
    pub fn msn(&self) -> Option<u32> {
        self.header.dcp.map(|d| d.msn)
    }

    /// True for packets that deliver payload toward application memory.
    pub fn is_data(&self) -> bool {
        self.desc.is_some() && self.dcp_tag() != DcpTag::HeaderOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_rdma::headers::*;

    fn pkt(tag: DcpTag, payload: u32) -> Packet {
        Packet {
            uid: 1,
            flow: FlowId(3),
            header: PacketHeader {
                eth: EthHeader::new(MacAddr::from_host(0), MacAddr::from_host(1)),
                ip: Ipv4Header::new(NodeId(5).ip(), NodeId(9).ip(), tag, 0),
                udp: UdpHeader::roce(100, 0),
                bth: Bth { opcode: RdmaOpcode::WriteMiddle, dest_qpn: 1, psn: 10, ack_req: false },
                dcp: Some(DcpDataExt { msn: 2, ssn: None }),
                reth: Some(Reth { vaddr: 0, rkey: 0, dma_len: payload }),
                aeth: None,
            },
            payload_len: payload,
            desc: None,
            ext: PktExt::None,
            sent_at: 0,
            is_retx: false,
            ingress: 0,
        }
    }

    #[test]
    fn node_ip_roundtrip() {
        for n in [0u32, 1, 255, 65_535, 1_000_000] {
            assert_eq!(NodeId::from_ip(NodeId(n).ip()), NodeId(n));
        }
    }

    #[test]
    fn wire_bytes_include_payload() {
        let p = pkt(DcpTag::Data, 1024);
        assert_eq!(p.wire_bytes(), p.header.wire_header_bytes() + 1024);
    }

    #[test]
    fn src_dst_derived_from_ip() {
        let p = pkt(DcpTag::Data, 0);
        assert_eq!(p.src_node(), NodeId(5));
        assert_eq!(p.dst_node(), NodeId(9));
    }
}
