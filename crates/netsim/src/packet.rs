//! The simulated packet: a parsed header stack plus simulation metadata.
//!
//! Payload *bytes* are not carried (they would dominate simulation cost);
//! instead data packets carry their [`PacketDescriptor`], which — combined
//! with the deterministic pattern generator in `dcp-rdma::memory` — lets the
//! receiver perform real direct placement that integrity tests can verify.
//!
//! `Packet` is sized for the pool-and-handle hot path: the descriptor is
//! stored as the packed [`PktDesc`] (no per-field `Option` padding) and the
//! struct's total size is locked by `packet_stays_within_three_cache_lines`
//! below. Endpoints touch the header + descriptor prefix per event; the
//! fabric moves only 8-byte [`crate::pool::PktRef`] handles.

use crate::time::Nanos;
use dcp_rdma::headers::{DcpTag, PacketHeader, RdmaOpcode};
use dcp_rdma::segment::PacketDescriptor;
use dcp_telemetry::RetxCause;

/// Identifies a flow (one RC connection) across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// Identifies a node (host or switch) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The IPv4 address assigned to this node (10.x.y.z from the index).
    pub fn ip(self) -> u32 {
        0x0a00_0000 | self.0
    }

    /// Inverse of [`NodeId::ip`].
    pub fn from_ip(ip: u32) -> NodeId {
        NodeId(ip & 0x00ff_ffff)
    }
}

/// Port index within a node.
pub type PortId = usize;

/// Transport-specific acknowledgment payloads.
///
/// These model fields that real implementations encode in vendor-specific
/// header extensions; keeping them as a typed enum lets every baseline speak
/// through the same fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktExt {
    None,
    /// Go-Back-N ACK: cumulative PSN (next expected).
    GbnAck {
        epsn: u32,
    },
    /// Go-Back-N NAK: receiver saw a gap; retransmit from `epsn`.
    GbnNak {
        epsn: u32,
    },
    /// IRN selective ACK: cumulative `epsn` plus the out-of-order PSN whose
    /// arrival triggered this SACK (§2.2).
    Sack {
        epsn: u32,
        sacked_psn: u32,
    },
    /// DCQCN Congestion Notification Packet.
    Cnp,
    /// MP-RDMA per-path ACK: cumulative PSN, the PSN being acknowledged, the
    /// path it travelled, and whether it was ECN-marked.
    MpAck {
        epsn: u32,
        acked_psn: u32,
        path: u16,
        ecn: bool,
    },
    /// Software-TCP cumulative ACK (byte-based).
    TcpAck {
        ack_seq: u64,
    },
    /// Erasure-coded transport shard tag: the generation's first data PSN,
    /// this shard's index within it (`shard < k` ⇒ data, else repair), and
    /// the generation geometry (k data + m repair shards). `k`/`m` ride on
    /// every shard so the receiver can decode generations whose first
    /// packets were lost.
    EcShard {
        gen_psn: u32,
        shard: u8,
        k: u8,
        m: u8,
    },
    /// Erasure-coded selective-repeat NACK: bitmap of the generation's data
    /// shards still missing after the repair budget was exhausted (bit i ⇔
    /// PSN `gen_psn + i`; u32 keeps `PktExt` at 16 bytes and caps k at 32 —
    /// the codec itself goes to k + m ≤ 256).
    EcNack {
        gen_psn: u32,
        missing: u32,
    },
}

/// Packed form of `Option<PacketDescriptor>`.
///
/// [`PacketDescriptor`] keeps four per-field `Option`s for API clarity; at
/// ~8 bytes of discriminant padding each, the naive `Option<…>` field cost
/// `Packet` an extra cache line. `PktDesc` flattens presence into one flags
/// byte (40 bytes total vs. 64) and converts losslessly both ways — the
/// round-trip is property-tested below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PktDesc {
    offset: u64,
    remote_addr: u64,
    index: u32,
    payload_len: u32,
    rkey: u32,
    imm: u32,
    ssn: u32,
    opcode: RdmaOpcode,
    flags: u8,
}

impl PktDesc {
    const PRESENT: u8 = 1 << 0;
    const HAS_REMOTE: u8 = 1 << 1;
    const HAS_RKEY: u8 = 1 << 2;
    const HAS_IMM: u8 = 1 << 3;
    const HAS_SSN: u8 = 1 << 4;

    /// The absent descriptor (ACK/HO/CNP-class packets).
    pub const NONE: PktDesc = PktDesc {
        offset: 0,
        remote_addr: 0,
        index: 0,
        payload_len: 0,
        rkey: 0,
        imm: 0,
        ssn: 0,
        opcode: RdmaOpcode::Acknowledge,
        flags: 0,
    };

    /// Packs a present descriptor.
    pub fn some(d: PacketDescriptor) -> Self {
        let mut flags = Self::PRESENT;
        if d.remote_addr.is_some() {
            flags |= Self::HAS_REMOTE;
        }
        if d.rkey.is_some() {
            flags |= Self::HAS_RKEY;
        }
        if d.imm.is_some() {
            flags |= Self::HAS_IMM;
        }
        if d.ssn.is_some() {
            flags |= Self::HAS_SSN;
        }
        PktDesc {
            offset: d.offset,
            remote_addr: d.remote_addr.unwrap_or(0),
            index: d.index,
            payload_len: d.payload_len,
            rkey: d.rkey.unwrap_or(0),
            imm: d.imm.unwrap_or(0),
            ssn: d.ssn.unwrap_or(0),
            opcode: d.opcode,
            flags,
        }
    }

    /// Packs an optional descriptor.
    pub fn pack(d: Option<PacketDescriptor>) -> Self {
        match d {
            Some(d) => Self::some(d),
            None => Self::NONE,
        }
    }

    /// Unpacks back to the `Option` form transports consume.
    #[inline]
    pub fn unpack(&self) -> Option<PacketDescriptor> {
        if self.flags & Self::PRESENT == 0 {
            return None;
        }
        Some(PacketDescriptor {
            opcode: self.opcode,
            index: self.index,
            offset: self.offset,
            payload_len: self.payload_len,
            remote_addr: (self.flags & Self::HAS_REMOTE != 0).then_some(self.remote_addr),
            rkey: (self.flags & Self::HAS_RKEY != 0).then_some(self.rkey),
            imm: (self.flags & Self::HAS_IMM != 0).then_some(self.imm),
            ssn: (self.flags & Self::HAS_SSN != 0).then_some(self.ssn),
        })
    }

    #[inline]
    pub fn is_some(&self) -> bool {
        self.flags & Self::PRESENT != 0
    }

    #[inline]
    pub fn is_none(&self) -> bool {
        !self.is_some()
    }
}

impl From<Option<PacketDescriptor>> for PktDesc {
    fn from(d: Option<PacketDescriptor>) -> Self {
        Self::pack(d)
    }
}

/// A packet in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique id of this packet *copy* (retransmissions get fresh uids).
    pub uid: u64,
    pub flow: FlowId,
    pub header: PacketHeader,
    /// Payload bytes carried (0 for ACK/HO/CNP).
    pub payload_len: u32,
    /// Placement descriptor for data packets (packed; see [`PktDesc`]).
    pub desc: PktDesc,
    /// Transport-specific extension.
    pub ext: PktExt,
    /// Time the sender put the packet on the wire (RTT estimation).
    pub sent_at: Nanos,
    /// True for retransmitted copies.
    pub is_retx: bool,
    /// For retransmitted copies, the transport signal that triggered the
    /// recovery ([`RetxCause::Unknown`] on first transmissions) — stamped by
    /// the deciding transport, reported on the wire-side `Retx` probe event.
    pub retx_cause: RetxCause,
    /// Ingress port on the node currently holding the packet; maintained by
    /// the simulator for PFC ingress accounting. Kept as `u32` (not
    /// `PortId`/`usize`) to avoid four bytes of padding per packet.
    pub ingress: u32,
}

impl Packet {
    /// Total bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.header.wire_header_bytes() + self.payload_len as usize
    }

    pub fn dcp_tag(&self) -> DcpTag {
        self.header.ip.dcp_tag()
    }

    /// Destination node, derived from the IP header.
    pub fn dst_node(&self) -> NodeId {
        NodeId::from_ip(self.header.ip.dst)
    }

    /// Source node, derived from the IP header.
    pub fn src_node(&self) -> NodeId {
        NodeId::from_ip(self.header.ip.src)
    }

    /// PSN from the BTH.
    pub fn psn(&self) -> u32 {
        self.header.bth.psn
    }

    /// MSN from the DCP extension (data/HO packets).
    pub fn msn(&self) -> Option<u32> {
        self.header.dcp.map(|d| d.msn)
    }

    /// True for packets that deliver payload toward application memory.
    pub fn is_data(&self) -> bool {
        self.desc.is_some() && self.dcp_tag() != DcpTag::HeaderOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_rdma::headers::*;

    fn pkt(tag: DcpTag, payload: u32) -> Packet {
        Packet {
            uid: 1,
            flow: FlowId(3),
            header: PacketHeader {
                eth: EthHeader::new(MacAddr::from_host(0), MacAddr::from_host(1)),
                ip: Ipv4Header::new(NodeId(5).ip(), NodeId(9).ip(), tag, 0),
                udp: UdpHeader::roce(100, 0),
                bth: Bth { opcode: RdmaOpcode::WriteMiddle, dest_qpn: 1, psn: 10, ack_req: false },
                dcp: Some(DcpDataExt { msn: 2, ssn: None }),
                reth: Some(Reth { vaddr: 0, rkey: 0, dma_len: payload }),
                aeth: None,
            },
            payload_len: payload,
            desc: PktDesc::NONE,
            ext: PktExt::None,
            sent_at: 0,
            is_retx: false,
            retx_cause: RetxCause::Unknown,
            ingress: 0,
        }
    }

    #[test]
    fn node_ip_roundtrip() {
        for n in [0u32, 1, 255, 65_535, 1_000_000] {
            assert_eq!(NodeId::from_ip(NodeId(n).ip()), NodeId(n));
        }
    }

    #[test]
    fn wire_bytes_include_payload() {
        let p = pkt(DcpTag::Data, 1024);
        assert_eq!(p.wire_bytes(), p.header.wire_header_bytes() + 1024);
    }

    #[test]
    fn src_dst_derived_from_ip() {
        let p = pkt(DcpTag::Data, 0);
        assert_eq!(p.src_node(), NodeId(5));
        assert_eq!(p.dst_node(), NodeId(9));
    }

    #[test]
    fn pktdesc_roundtrips_every_presence_combination() {
        for mask in 0u8..16 {
            let d = PacketDescriptor {
                opcode: RdmaOpcode::WriteLastImm,
                index: 3,
                offset: 4096,
                payload_len: 1024,
                remote_addr: (mask & 1 != 0).then_some(0xdead_beef),
                rkey: (mask & 2 != 0).then_some(7),
                imm: (mask & 4 != 0).then_some(42),
                ssn: (mask & 8 != 0).then_some(9),
            };
            assert_eq!(PktDesc::some(d).unpack(), Some(d), "mask {mask:#06b}");
        }
        assert_eq!(PktDesc::NONE.unpack(), None);
        assert_eq!(PktDesc::pack(None), PktDesc::NONE);
        assert!(PktDesc::NONE.is_none());
    }

    /// Regression lock on the hot-path struct sizes. `PktDesc` must beat the
    /// `Option<PacketDescriptor>` it replaces, and `Packet` overall must
    /// stay within three cache lines — the header + descriptor prefix an
    /// endpoint actually touches fits in the first two.
    #[test]
    fn packet_stays_within_three_cache_lines() {
        assert!(
            std::mem::size_of::<PktDesc>() <= 40,
            "PktDesc grew to {} bytes",
            std::mem::size_of::<PktDesc>()
        );
        assert!(
            std::mem::size_of::<PktDesc>() < std::mem::size_of::<Option<PacketDescriptor>>(),
            "packed descriptor no smaller than Option<PacketDescriptor>"
        );
        assert!(
            std::mem::size_of::<Packet>() <= 192,
            "Packet grew to {} bytes (budget: 3 × 64-byte cache lines)",
            std::mem::size_of::<Packet>()
        );
    }
}
