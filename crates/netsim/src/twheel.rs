//! Hierarchical timer wheel for endpoint timers.
//!
//! Transport timers (RTO, pacing, CC ticks) are the one event class whose
//! pending population scales with *installed* connections rather than with
//! traffic: a million idle QPs with armed retransmission timeouts is a
//! million far-future entries. Keeping them in the calendar queue
//! ([`crate::equeue::EventQueue`]) makes every rotation and every width
//! adaptation pay for state that almost never fires soon; this wheel gives
//! timer arming O(1) pushes into power-of-two slots and only materializes a
//! heap for the slice of time actually being executed.
//!
//! Layout, from soonest to latest:
//!
//! * `due`: min-heap of entries below `due_start + W0` (W0 = 2^12 ns). The
//!   only structure `pop` touches directly. Late inserts (an endpoint
//!   arming a timer closer than the wheel origin) land here too — a heap
//!   absorbs them in order without any structural motion.
//! * `levels`: [`LEVELS`] levels of 64 slots; level `l` buckets entries by
//!   bits `[12 + 6l, 12 + 6(l+1))` of their timestamp. An entry lives at
//!   the *highest* level where its slot digit differs from `due_start`'s,
//!   so each entry cascades down at most [`LEVELS`] times over its life.
//!   Per-level occupancy bitmaps make "next expiring slot" a `ctz`.
//! * `overflow`: min-heap past the 2^42 ns (~73 min) horizon.
//!
//! Ordering contract — identical to the calendar queue's: keys are
//! `(at, seq)` with `seq` unique and monotone (the owning shard's event
//! counter, shared with its calendar queue so the two structures merge into
//! one total order), and `pop` returns entries in exactly ascending key
//! order.
//!
//! `next_key` is `&self` and exact: the wheel maintains `cached_min`
//! (lowered on insert, recomputed from `due` after pop). The wheel origin
//! only advances inside `pop` — peeking never reorganizes, so an engine
//! that polls `next_key` every step cannot drag `due_start` ahead of
//! simulation time and degrade near-future inserts into the heap.

use crate::time::Nanos;
use std::collections::BinaryHeap;

/// log2 of the due-window width: 4096 ns.
const W0_LOG2: u32 = 12;
/// log2 of the per-level fan-out (64 slots → one `u64` occupancy word).
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel horizon: 2^(12 + 6·5) = 2^42 ns ≈ 73 minutes.
const LEVELS: usize = 5;

#[inline]
fn shift(level: usize) -> u32 {
    W0_LOG2 + SLOT_BITS * level as u32
}

/// Base-64 digit of `at` at `level` (bits `[shift(level), shift(level+1))`).
#[inline]
fn digit(at: Nanos, level: usize) -> usize {
    ((at >> shift(level)) & (SLOTS as Nanos - 1)) as usize
}

/// Everything above the wheel horizon — entries whose top differs from the
/// origin's wait in `overflow`.
#[inline]
fn top(at: Nanos) -> Nanos {
    at >> shift(LEVELS)
}

struct Entry<T> {
    at: Nanos,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, o: &Self) -> bool {
        self.key() == o.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
// Reversed: `BinaryHeap<Entry>` becomes a min-queue, and `BinaryHeap::from`
// can heapify a slot's `Vec` storage in place (same trick as the calendar
// queue).
impl<T> Ord for Entry<T> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        o.key().cmp(&self.key())
    }
}

/// Deterministic hierarchical timer wheel keyed on `(time, seq)`; see
/// module docs.
pub struct TimerWheel<T> {
    /// Wheel origin, W0-aligned. Every level/overflow entry is at or past
    /// `due_start + W0`; `due` holds everything earlier.
    due_start: Nanos,
    due: BinaryHeap<Entry<T>>,
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Per-level slot-occupancy bitmaps.
    occ: [u64; LEVELS],
    overflow: BinaryHeap<Entry<T>>,
    len: usize,
    peak_len: usize,
    /// Exact minimum key over all entries; `None` when empty.
    cached_min: Option<(Nanos, u64)>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    pub fn new() -> Self {
        TimerWheel {
            due_start: 0,
            due: BinaryHeap::new(),
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            occ: [0; LEVELS],
            overflow: BinaryHeap::new(),
            len: 0,
            peak_len: 0,
            cached_min: None,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of pending entries over the wheel's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Exact `(at, seq)` of the earliest pending entry — O(1), no
    /// reorganization.
    #[inline]
    pub fn next_key(&self) -> Option<(Nanos, u64)> {
        self.cached_min
    }

    /// Routes an entry to `due`, a level slot, or overflow. Shared by
    /// `insert` and cascades, so placement is always against the current
    /// origin.
    fn place(&mut self, e: Entry<T>) {
        let at = e.at;
        if at < self.due_start + (1 << W0_LOG2) {
            self.due.push(e);
            return;
        }
        if top(at) != top(self.due_start) {
            self.overflow.push(e);
            return;
        }
        // Highest level where the digit differs from the origin's; such a
        // level exists because `at >= due_start + W0` with an equal top.
        let mut l = LEVELS - 1;
        while digit(at, l) == digit(self.due_start, l) {
            debug_assert!(l > 0, "all digits equal but at >= due_start + W0");
            l -= 1;
        }
        let s = digit(at, l);
        self.levels[l][s].push(e);
        self.occ[l] |= 1 << s;
    }

    /// Inserts an entry. `(at, seq)` must be unique with `seq` monotone
    /// across calls; `at` may not precede the last popped time.
    pub fn insert(&mut self, at: Nanos, seq: u64, item: T) {
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if self.cached_min.is_none_or(|m| (at, seq) < m) {
            self.cached_min = Some((at, seq));
        }
        self.place(Entry { at, seq, item });
    }

    /// Removes and returns the earliest entry as `(at, seq, item)`.
    pub fn pop(&mut self) -> Option<(Nanos, u64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.due.is_empty() {
            self.advance();
        }
        let e = self.due.pop().expect("advance refills due");
        self.len -= 1;
        // Keep `due` primed so `cached_min` stays an O(1) exact peek. This
        // advance happens at pop time — the popped entry was the global
        // minimum, so the origin only ever moves to where execution already
        // is, never ahead of it.
        if self.due.is_empty() && self.len > 0 {
            self.advance();
        }
        self.cached_min = self.due.peek().map(|d| d.key());
        debug_assert_eq!(self.cached_min.is_none(), self.len == 0);
        Some((e.at, e.seq, e.item))
    }

    /// Moves the origin to the next expiring slot and cascades it, until
    /// `due` is non-empty. Caller guarantees `len > 0` and `due` empty.
    fn advance(&mut self) {
        debug_assert!(self.due.is_empty() && self.len > 0);
        loop {
            let Some(l) = (0..LEVELS).find(|&l| self.occ[l] != 0) else {
                // Only overflow left: jump the origin to its minimum and
                // migrate everything sharing that top region.
                let at = self.overflow.peek().expect("len > 0 with empty wheel").at;
                self.due_start = (at >> W0_LOG2) << W0_LOG2;
                self.migrate_overflow();
                debug_assert!(!self.due.is_empty(), "overflow min lands in the due window");
                return;
            };
            // Every occupied slot digit exceeds the origin's at its level
            // (placement invariant), so the raw ctz is the earliest slot.
            let s = self.occ[l].trailing_zeros() as usize;
            debug_assert!(s > digit(self.due_start, l));
            let sh = shift(l);
            let above = shift(l + 1);
            self.due_start = ((self.due_start >> above) << above) | ((s as Nanos) << sh);
            self.occ[l] &= !(1 << s);
            let v = std::mem::take(&mut self.levels[l][s]);
            if l == 0 {
                // The whole slot is the new due window [due_start,
                // due_start + W0): heapify in place, recycle the storage.
                debug_assert!(self.due.is_empty());
                let old = std::mem::replace(&mut self.due, BinaryHeap::from(v));
                self.levels[0][s] = old.into_vec();
            } else {
                // Re-place one level down (placement is order-agnostic:
                // every destination orders by the unique `(at, seq)` key),
                // then keep the drained storage on this level. The origin
                // moves through slot indices monotonically, so the next
                // inserts at this level land in the *following* slot —
                // hand it the buffer if it has none (the cold-slot case:
                // a level-l slot is only revisited every 64^(l+1) windows,
                // long after its last capacity would otherwise have been
                // dropped); otherwise the slot cycle is already warm and
                // the buffer stays where it was.
                let mut v = v;
                while let Some(e) = v.pop() {
                    self.place(e);
                }
                let next = (s + 1) % SLOTS;
                if self.levels[l][next].capacity() == 0 {
                    self.levels[l][next] = v;
                } else {
                    self.levels[l][s] = v;
                }
            }
            if !self.due.is_empty() {
                return;
            }
        }
    }

    /// Pulls overflow entries that entered the wheel's top region back onto
    /// the levels (or into `due`).
    fn migrate_overflow(&mut self) {
        let t = top(self.due_start);
        while self.overflow.peek().is_some_and(|e| top(e.at) == t) {
            let e = self.overflow.pop().expect("peeked");
            self.place(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interleaved insert/pop against a reference sort, mixing the due
    /// window, every wheel level, and overflow. Inserts respect
    /// `at >= last popped time` like the engine does.
    #[test]
    fn interleaved_matches_reference_sort() {
        let mut w = TimerWheel::new();
        let mut reference: Vec<(Nanos, u64)> = Vec::new();
        let mut state: u64 = 0x00c0_ffee_d00d_1234;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seq = 0u64;
        let mut now: Nanos = 0;
        let mut popped = Vec::new();
        for _ in 0..20_000 {
            if rng() % 3 != 0 || w.is_empty() {
                seq += 1;
                let delta = match rng() % 10 {
                    0..=2 => rng() % 4_000,             // due window
                    3..=5 => rng() % 250_000,           // levels 0–1
                    6..=7 => rng() % 1_000_000_000,     // levels 2–4
                    8 => rng() % 100_000_000_000,       // level 4-ish
                    _ => (1 << 42) + rng() % (1 << 43), // overflow
                };
                let at = now + delta;
                w.insert(at, seq, seq as u32);
                reference.push((at, seq));
            } else {
                let next = w.next_key().expect("non-empty");
                let (at, s, _) = w.pop().unwrap();
                assert_eq!((at, s), next, "next_key must be the exact pop key");
                now = at;
                popped.push((at, s));
            }
        }
        while let Some((at, s, _)) = w.pop() {
            popped.push((at, s));
        }
        reference.sort_unstable();
        assert_eq!(popped, reference);
        assert!(w.is_empty() && w.next_key().is_none());
    }

    /// Same-timestamp entries must come out in seq order (the determinism
    /// tiebreak), wherever they were stored.
    #[test]
    fn seq_breaks_ties() {
        let mut w = TimerWheel::new();
        for seq in 1..=50u64 {
            w.insert(1_000_000, seq, ());
        }
        for expect in 1..=50u64 {
            assert_eq!(w.pop().map(|(_, s, _)| s), Some(expect));
        }
    }

    /// A pop may advance the origin past a later insert's timestamp; such
    /// late inserts must still come out in exact order (they ride the due
    /// heap).
    #[test]
    fn late_inserts_after_origin_advance() {
        let mut w = TimerWheel::new();
        w.insert(10_000_000, 1, 1u32);
        assert_eq!(w.pop().map(|(at, ..)| at), Some(10_000_000));
        // Origin is now ~10 ms; arm timers "in the past" relative to it
        // (legal: the engine's clock is only at 10 ms).
        w.insert(10_000_100, 2, 2);
        w.insert(10_000_050, 3, 3);
        w.insert(12_000_000, 4, 4);
        assert_eq!(w.next_key(), Some((10_000_050, 3)));
        assert_eq!(w.pop().map(|(at, seq, _)| (at, seq)), Some((10_000_050, 3)));
        assert_eq!(w.pop().map(|(at, seq, _)| (at, seq)), Some((10_000_100, 2)));
        assert_eq!(w.pop().map(|(at, seq, _)| (at, seq)), Some((12_000_000, 4)));
    }

    /// next_key never reorganizes: a far-future minimum peeked many times
    /// must not stop near-future inserts from ordering correctly.
    #[test]
    fn peek_does_not_advance_origin() {
        let mut w = TimerWheel::new();
        w.insert(3_000_000_000, 1, 1u32); // 3 s out
        for _ in 0..100 {
            assert_eq!(w.next_key(), Some((3_000_000_000, 1)));
        }
        // A near-future timer armed after all that peeking still wins.
        w.insert(5_000, 2, 2);
        assert_eq!(w.next_key(), Some((5_000, 2)));
        assert_eq!(w.pop().map(|(at, ..)| at), Some(5_000));
        assert_eq!(w.pop().map(|(at, ..)| at), Some(3_000_000_000));
    }

    /// A million armed far-future timers: inserts are O(1) slot pushes and
    /// the wheel drains them in exact order (spot-checked via checksum
    /// against the insertion set).
    #[test]
    fn million_timers_drain_in_order() {
        let mut w = TimerWheel::new();
        let n = 1_000_000u64;
        for i in 0..n {
            // Spread over ~4 ms like a fleet of armed RTOs.
            let at = 1_000_000 + (i * 2_654_435_761) % 4_000_000;
            w.insert(at, i + 1, ());
        }
        assert_eq!(w.len(), n as usize);
        let mut last = (0, 0);
        let mut count = 0u64;
        while let Some((at, seq, _)) = w.pop() {
            assert!((at, seq) > last, "out of order at entry {count}");
            last = (at, seq);
            count += 1;
        }
        assert_eq!(count, n);
    }
}
