//! Message segmentation: turning a Work Queue Element into the per-packet
//! descriptors a transport transmits.
//!
//! Under DCP every packet is self-describing (§4.4): Write packets all carry
//! a RETH whose `vaddr` is already offset to the packet's own position, and
//! two-sided packets all carry the SSN. The segmenter produces exactly that,
//! so retransmitting any single PSN requires no neighbouring state — the
//! property HO-based retransmission depends on.

use crate::headers::RdmaOpcode;
use crate::qp::{SendWqe, WorkReqOp};
use serde::{Deserialize, Serialize};

/// Everything needed to emit (or re-emit) one packet of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketDescriptor {
    pub opcode: RdmaOpcode,
    /// PSN offset of this packet within the message (0-based).
    pub index: u32,
    /// Offset of this packet's payload within the message.
    pub offset: u64,
    /// Payload bytes carried (may be zero for zero-length messages).
    pub payload_len: u32,
    /// Remote virtual address for Write-family packets (already offset).
    pub remote_addr: Option<u64>,
    pub rkey: Option<u32>,
    /// Immediate delivered by the final packet of a WriteImm.
    pub imm: Option<u32>,
    /// SSN carried by this packet: every Send packet, and only the last
    /// packet of a Write-with-Immediate (§4.4).
    pub ssn: Option<u32>,
}

/// Segments `wqe` at `mtu`, returning descriptors for `indices` (or all
/// packets when `indices` is `None` — convenience for full transmission).
///
/// Descriptor generation is random-access by design: the DCP sender
/// retransmits single PSNs named by header-only packets, so
/// [`descriptor_for`] is the primitive and full segmentation iterates it.
pub fn segment_message(wqe: &SendWqe, mtu: usize) -> Vec<PacketDescriptor> {
    let n = wqe.packet_count(mtu);
    (0..n).map(|i| descriptor_for(wqe, mtu, i)).collect()
}

/// Builds the descriptor for packet `index` of `wqe`'s message.
///
/// # Panics
/// Panics if `index` is out of range for the message — callers derive the
/// index from PSN arithmetic and a violation is a transport bug.
pub fn descriptor_for(wqe: &SendWqe, mtu: usize, index: u32) -> PacketDescriptor {
    let total = wqe.packet_count(mtu);
    assert!(index < total, "packet index {index} out of range ({total} packets)");
    let first = index == 0;
    let last = index == total - 1;
    let offset = index as u64 * mtu as u64;
    let payload_len = if wqe.len == 0 { 0 } else { (wqe.len - offset).min(mtu as u64) as u32 };
    let (opcode, remote_addr, rkey, imm) = match wqe.op {
        WorkReqOp::Send => {
            let op = match (first, last) {
                (true, true) => RdmaOpcode::SendOnly,
                (true, false) => RdmaOpcode::SendFirst,
                (false, false) => RdmaOpcode::SendMiddle,
                (false, true) => RdmaOpcode::SendLast,
            };
            (op, None, None, None)
        }
        WorkReqOp::Write { remote_addr, rkey } => {
            let op = match (first, last) {
                (true, true) => RdmaOpcode::WriteOnly,
                (true, false) => RdmaOpcode::WriteFirst,
                (false, false) => RdmaOpcode::WriteMiddle,
                (false, true) => RdmaOpcode::WriteLast,
            };
            (op, Some(remote_addr + offset), Some(rkey), None)
        }
        WorkReqOp::WriteImm { remote_addr, rkey, imm } => {
            let op = match (first, last) {
                (true, true) => RdmaOpcode::WriteOnlyImm,
                (true, false) => RdmaOpcode::WriteFirst,
                (false, false) => RdmaOpcode::WriteMiddle,
                (false, true) => RdmaOpcode::WriteLastImm,
            };
            (op, Some(remote_addr + offset), Some(rkey), if last { Some(imm) } else { None })
        }
    };
    // SSN: all Send packets; only the immediate-carrying last packet of a
    // WriteImm (Fig. 4a).
    let ssn = match wqe.op {
        WorkReqOp::Send => wqe.ssn,
        WorkReqOp::WriteImm { .. } if last => wqe.ssn,
        _ => None,
    };
    PacketDescriptor { opcode, index, offset, payload_len, remote_addr, rkey, imm, ssn }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wqe(op: WorkReqOp, len: u64) -> SendWqe {
        SendWqe {
            wr_id: 1,
            op,
            local_addr: 0x8000,
            len,
            msn: 4,
            ssn: op.consumes_recv_wqe().then_some(2),
            signaled: true,
        }
    }

    #[test]
    fn single_packet_send_is_send_only() {
        let d = segment_message(&wqe(WorkReqOp::Send, 500), 1024);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].opcode, RdmaOpcode::SendOnly);
        assert_eq!(d[0].payload_len, 500);
        assert_eq!(d[0].ssn, Some(2));
    }

    #[test]
    fn multi_packet_send_opcode_sequence() {
        let d = segment_message(&wqe(WorkReqOp::Send, 3000), 1024);
        assert_eq!(
            d.iter().map(|p| p.opcode).collect::<Vec<_>>(),
            vec![RdmaOpcode::SendFirst, RdmaOpcode::SendMiddle, RdmaOpcode::SendLast]
        );
        assert_eq!(d[2].payload_len, 3000 - 2048);
        // Every Send packet carries the SSN.
        assert!(d.iter().all(|p| p.ssn == Some(2)));
    }

    #[test]
    fn write_packets_all_carry_offset_reth() {
        let d =
            segment_message(&wqe(WorkReqOp::Write { remote_addr: 0x10_000, rkey: 9 }, 2500), 1024);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].remote_addr, Some(0x10_000));
        assert_eq!(d[1].remote_addr, Some(0x10_000 + 1024));
        assert_eq!(d[2].remote_addr, Some(0x10_000 + 2048));
        assert!(d.iter().all(|p| p.rkey == Some(9)));
        assert!(d.iter().all(|p| p.ssn.is_none()), "plain Writes never carry SSN");
    }

    #[test]
    fn write_imm_carries_ssn_and_imm_only_on_last() {
        let d = segment_message(
            &wqe(WorkReqOp::WriteImm { remote_addr: 0x100, rkey: 1, imm: 0xbeef }, 2048),
            1024,
        );
        assert_eq!(d[0].opcode, RdmaOpcode::WriteFirst);
        assert_eq!(d[1].opcode, RdmaOpcode::WriteLastImm);
        assert_eq!(d[0].ssn, None);
        assert_eq!(d[1].ssn, Some(2));
        assert_eq!(d[0].imm, None);
        assert_eq!(d[1].imm, Some(0xbeef));
    }

    #[test]
    fn zero_length_message_is_one_empty_packet() {
        let d = segment_message(&wqe(WorkReqOp::Send, 0), 1024);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].payload_len, 0);
        assert_eq!(d[0].opcode, RdmaOpcode::SendOnly);
    }

    #[test]
    fn descriptor_for_is_random_access_consistent() {
        let w = wqe(WorkReqOp::Write { remote_addr: 0x0, rkey: 3 }, 10_000);
        let all = segment_message(&w, 1024);
        for (i, d) in all.iter().enumerate() {
            assert_eq!(&descriptor_for(&w, 1024, i as u32), d);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn descriptor_for_rejects_bad_index() {
        let w = wqe(WorkReqOp::Send, 1024);
        descriptor_for(&w, 1024, 1);
    }

    #[test]
    fn payload_lengths_sum_to_message_length() {
        for len in [1u64, 1023, 1024, 1025, 4096, 99_999] {
            let d = segment_message(&wqe(WorkReqOp::Send, len), 1024);
            assert_eq!(d.iter().map(|p| p.payload_len as u64).sum::<u64>(), len, "len={len}");
        }
    }
}
