//! Queue Pair descriptors: Work Queue Elements, Completion Queue entries and
//! the queue containers an RNIC schedules over.
//!
//! A Reliable-Connection QP in this reproduction is the pair of endpoints a
//! transport instance drives: the requester holds the Send Queue (SQ) and —
//! under DCP — the host-memory Retransmission Queue (RetransQ, §4.3); the
//! responder holds the Receive Queue (RQ). Both sides own a Completion Queue
//! (CQ).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Queue Pair Number (24 bits on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Qpn(pub u32);

/// Identifies one endpoint of a connection: the host and the QP on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QpEndpointId {
    pub host: u32,
    pub qpn: Qpn,
}

/// The operation a send Work Request performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkReqOp {
    /// Two-sided Send: consumes a Receive WQE at the responder.
    Send,
    /// One-sided Write to `remote_addr`.
    Write { remote_addr: u64, rkey: u32 },
    /// One-sided Write that also delivers an immediate value, consuming a
    /// Receive WQE at the responder on completion.
    WriteImm { remote_addr: u64, rkey: u32, imm: u32 },
}

impl WorkReqOp {
    /// True for operations that consume a Receive WQE at the responder and
    /// therefore carry an SSN under DCP (§4.4).
    pub fn consumes_recv_wqe(&self) -> bool {
        !matches!(self, WorkReqOp::Write { .. })
    }
}

/// A send-side Work Queue Element: one message posted to the SQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendWqe {
    /// Application-chosen identifier returned in the completion.
    pub wr_id: u64,
    pub op: WorkReqOp,
    /// Local virtual address of the message payload.
    pub local_addr: u64,
    /// Message length in bytes. Zero-length messages occupy one packet.
    pub len: u64,
    /// Message Sequence Number: posting order in the SQ, assigned at post
    /// time and carried in every packet of the message (Fig. 4a).
    pub msn: u32,
    /// Send Sequence Number for two-sided operations: posting order among
    /// the WQEs that consume Receive WQEs (§4.4). `None` for plain Writes.
    pub ssn: Option<u32>,
    /// Whether the application asked for a completion on this WQE.
    pub signaled: bool,
}

impl SendWqe {
    /// Number of packets this message segments into at the given MTU.
    pub fn packet_count(&self, mtu: usize) -> u32 {
        if self.len == 0 {
            1
        } else {
            self.len.div_ceil(mtu as u64) as u32
        }
    }
}

/// A receive-side Work Queue Element: one buffer posted to the RQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecvWqe {
    pub wr_id: u64,
    pub addr: u64,
    pub len: u64,
}

/// What a completion describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CqeKind {
    /// A send-side WQE finished (message fully acknowledged).
    SendComplete,
    /// A receive-side WQE finished (message fully arrived, in MSN order).
    RecvComplete,
}

/// A Completion Queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cqe {
    pub wr_id: u64,
    pub qpn: Qpn,
    pub kind: CqeKind,
    pub byte_len: u64,
    /// Immediate value for `WriteImm`, zero otherwise.
    pub imm: u32,
}

/// Send queue: WQEs awaiting transmission or acknowledgment, in MSN order.
///
/// The RNIC's fetch-and-drop strategy (§4.3) is modelled by transports
/// reading entries by index without removing them; entries are retired only
/// when the message is acknowledged.
#[derive(Debug, Default, Clone)]
pub struct SendQueue {
    entries: VecDeque<SendWqe>,
    next_msn: u32,
    next_ssn: u32,
}

impl SendQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a Work Request, assigning its MSN (and SSN if two-sided).
    /// Returns the assigned MSN.
    pub fn post(
        &mut self,
        wr_id: u64,
        op: WorkReqOp,
        local_addr: u64,
        len: u64,
        signaled: bool,
    ) -> u32 {
        let msn = self.next_msn;
        self.next_msn += 1;
        let ssn = if op.consumes_recv_wqe() {
            let s = self.next_ssn;
            self.next_ssn += 1;
            Some(s)
        } else {
            None
        };
        self.entries.push_back(SendWqe { wr_id, op, local_addr, len, msn, ssn, signaled });
        msn
    }

    /// Looks up the WQE with the given MSN, if still outstanding.
    pub fn by_msn(&self, msn: u32) -> Option<&SendWqe> {
        let front = self.entries.front()?.msn;
        let ix = msn.checked_sub(front)? as usize;
        self.entries.get(ix)
    }

    /// Retires all WQEs with `msn < emsn` (cumulative acknowledgment),
    /// returning them oldest-first so completions can be generated.
    pub fn retire_below(&mut self, emsn: u32) -> Vec<SendWqe> {
        let mut done = Vec::new();
        while let Some(front) = self.entries.front() {
            if front.msn < emsn {
                done.push(self.entries.pop_front().unwrap());
            } else {
                break;
            }
        }
        done
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// MSN that the next posted WQE would receive.
    pub fn next_msn(&self) -> u32 {
        self.next_msn
    }

    /// Oldest outstanding (unacknowledged) MSN, if any — the `unaMSN` the
    /// DCP coarse timeout fallback tracks (§4.5).
    pub fn una_msn(&self) -> Option<u32> {
        self.entries.front().map(|w| w.msn)
    }

    pub fn iter(&self) -> impl Iterator<Item = &SendWqe> {
        self.entries.iter()
    }
}

/// Receive queue: buffers posted by the application, consumed in SSN order.
#[derive(Debug, Default, Clone)]
pub struct RecvQueue {
    entries: VecDeque<RecvWqe>,
    /// SSN of the WQE at the front of the queue.
    front_ssn: u32,
}

impl RecvQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn post(&mut self, wqe: RecvWqe) {
        self.entries.push_back(wqe);
    }

    /// Looks up the Receive WQE matching a given SSN without consuming it —
    /// what the DCP receiver does when an out-of-order Send packet arrives
    /// carrying its SSN (§4.4).
    pub fn by_ssn(&self, ssn: u32) -> Option<&RecvWqe> {
        let ix = ssn.checked_sub(self.front_ssn)? as usize;
        self.entries.get(ix)
    }

    /// Consumes the front WQE once the message with `front_ssn` completes.
    pub fn consume_front(&mut self) -> Option<RecvWqe> {
        let w = self.entries.pop_front()?;
        self.front_ssn += 1;
        Some(w)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Empties the queue and rewinds the SSN cursor, keeping the buffer
    /// capacity — used when a QP slot is recycled for a new connection.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.front_ssn = 0;
    }
}

/// A retransmission entry: the metadata the DCP Rx path extracts from a
/// header-only packet and DMA-writes into the host-memory RetransQ (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetransEntry {
    pub msn: u32,
    pub psn: u32,
}

/// Host-memory retransmission queue, one per QP (§4.3).
///
/// Allocated alongside the SQ/RQ/CQ at QP creation and managed exclusively
/// by the RNIC; its length is mirrored in the QPC so the Tx path can check
/// emptiness without a PCIe round trip.
#[derive(Debug, Default, Clone)]
pub struct RetransQueue {
    entries: VecDeque<RetransEntry>,
}

impl RetransQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, e: RetransEntry) {
        self.entries.push_back(e);
    }

    /// Fetches up to `n` entries — the batched-fetch of §4.3, bounded by
    /// `min(16, len, awin/MTU)` at the call site.
    pub fn fetch(&mut self, n: usize) -> Vec<RetransEntry> {
        let take = n.min(self.entries.len());
        self.entries.drain(..take).collect()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_assigns_monotonic_msn_and_ssn_only_for_two_sided() {
        let mut sq = SendQueue::new();
        let m0 = sq.post(1, WorkReqOp::Send, 0, 100, true);
        let m1 = sq.post(2, WorkReqOp::Write { remote_addr: 0x100, rkey: 1 }, 0, 100, true);
        let m2 =
            sq.post(3, WorkReqOp::WriteImm { remote_addr: 0x200, rkey: 1, imm: 7 }, 0, 100, true);
        assert_eq!((m0, m1, m2), (0, 1, 2));
        assert_eq!(sq.by_msn(0).unwrap().ssn, Some(0));
        assert_eq!(sq.by_msn(1).unwrap().ssn, None);
        assert_eq!(sq.by_msn(2).unwrap().ssn, Some(1));
    }

    #[test]
    fn retire_below_is_cumulative() {
        let mut sq = SendQueue::new();
        for i in 0..5 {
            sq.post(i, WorkReqOp::Send, 0, 10, true);
        }
        let done = sq.retire_below(3);
        assert_eq!(done.len(), 3);
        assert_eq!(sq.una_msn(), Some(3));
        assert!(sq.by_msn(2).is_none());
        assert!(sq.by_msn(3).is_some());
        // Retiring below an already-retired point is a no-op.
        assert!(sq.retire_below(2).is_empty());
    }

    #[test]
    fn packet_count_rounds_up_and_handles_zero_len() {
        let wqe = SendWqe {
            wr_id: 0,
            op: WorkReqOp::Send,
            local_addr: 0,
            len: 2049,
            msn: 0,
            ssn: Some(0),
            signaled: true,
        };
        assert_eq!(wqe.packet_count(1024), 3);
        let zero = SendWqe { len: 0, ..wqe };
        assert_eq!(zero.packet_count(1024), 1);
        let exact = SendWqe { len: 2048, ..wqe };
        assert_eq!(exact.packet_count(1024), 2);
    }

    #[test]
    fn recv_queue_matches_by_ssn_and_consumes_in_order() {
        let mut rq = RecvQueue::new();
        for i in 0..3u64 {
            rq.post(RecvWqe { wr_id: i, addr: i * 0x1000, len: 0x1000 });
        }
        assert_eq!(rq.by_ssn(2).unwrap().wr_id, 2);
        assert_eq!(rq.by_ssn(3), None);
        assert_eq!(rq.consume_front().unwrap().wr_id, 0);
        // After consuming SSN 0, SSN 1 is at the front.
        assert_eq!(rq.by_ssn(1).unwrap().wr_id, 1);
        assert_eq!(rq.by_ssn(0), None, "consumed SSN no longer matches");
    }

    #[test]
    fn retransq_fetch_is_fifo_and_bounded() {
        let mut rq = RetransQueue::new();
        for psn in 0..10 {
            rq.push(RetransEntry { msn: 0, psn });
        }
        let batch = rq.fetch(4);
        assert_eq!(batch.iter().map(|e| e.psn).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(rq.len(), 6);
        let rest = rq.fetch(100);
        assert_eq!(rest.len(), 6);
        assert!(rq.is_empty());
    }
}
