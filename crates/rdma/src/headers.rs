//! RoCEv2 packet headers with the DCP extensions of Fig. 4.
//!
//! The structs here are the *parsed* representation that the simulator moves
//! around; [`crate::wire`] provides the byte-exact encoding used to check
//! sizes (e.g. the 57-byte header-only packet) and round-trip fidelity.

use serde::{Deserialize, Serialize};

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Derives a locally-administered MAC from a small host index, the way
    /// the testbed assigns `02-00-00-00-00-xx` style addresses.
    pub fn from_host(ix: u32) -> Self {
        let b = ix.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

/// The 2-bit DCP tag carried in the IP ToS field (§4.2).
///
/// It classifies every packet in the fabric into the four categories the
/// DCP-Switch dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum DcpTag {
    /// `00` — non-DCP traffic; dropped when the data queue is over threshold.
    NonDcp = 0b00,
    /// `01` — DCP ACK packets (carry `eMSN`); dropped when over threshold.
    Ack = 0b01,
    /// `10` — DCP data packets (normal and retransmitted); trimmed when the
    /// data queue is over threshold.
    Data = 0b10,
    /// `11` — header-only packets produced by trimming; always enqueued in
    /// the control queue.
    HeaderOnly = 0b11,
}

impl DcpTag {
    /// Parses the tag from the two reserved ToS bits.
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => DcpTag::NonDcp,
            0b01 => DcpTag::Ack,
            0b10 => DcpTag::Data,
            _ => DcpTag::HeaderOnly,
        }
    }

    /// Returns the two ToS bits encoding this tag.
    pub fn bits(self) -> u8 {
        self as u8
    }
}

/// RoCEv2 Base Transport Header opcodes used in this reproduction.
///
/// Only the RC (reliable connection) Send / Write / Write-with-Immediate
/// families and ACK are modelled, matching §4.4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RdmaOpcode {
    SendFirst,
    SendMiddle,
    SendLast,
    SendOnly,
    WriteFirst,
    WriteMiddle,
    WriteLast,
    WriteOnly,
    WriteLastImm,
    WriteOnlyImm,
    Acknowledge,
}

impl RdmaOpcode {
    /// True for packets that begin a message.
    pub fn is_first(self) -> bool {
        matches!(
            self,
            RdmaOpcode::SendFirst
                | RdmaOpcode::SendOnly
                | RdmaOpcode::WriteFirst
                | RdmaOpcode::WriteOnly
                | RdmaOpcode::WriteOnlyImm
        )
    }

    /// True for packets that end a message (trigger completion checks).
    pub fn is_last(self) -> bool {
        matches!(
            self,
            RdmaOpcode::SendLast
                | RdmaOpcode::SendOnly
                | RdmaOpcode::WriteLast
                | RdmaOpcode::WriteOnly
                | RdmaOpcode::WriteLastImm
                | RdmaOpcode::WriteOnlyImm
        )
    }

    /// True for the two-sided Send family, which consumes a Receive WQE.
    pub fn is_send(self) -> bool {
        matches!(
            self,
            RdmaOpcode::SendFirst
                | RdmaOpcode::SendMiddle
                | RdmaOpcode::SendLast
                | RdmaOpcode::SendOnly
        )
    }

    /// True for the one-sided Write family (with or without immediate).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            RdmaOpcode::WriteFirst
                | RdmaOpcode::WriteMiddle
                | RdmaOpcode::WriteLast
                | RdmaOpcode::WriteOnly
                | RdmaOpcode::WriteLastImm
                | RdmaOpcode::WriteOnlyImm
        )
    }

    /// True if the packet carries an immediate value (consumes a Receive WQE
    /// at message completion).
    pub fn has_immediate(self) -> bool {
        matches!(self, RdmaOpcode::WriteLastImm | RdmaOpcode::WriteOnlyImm)
    }

    /// IBTA wire encoding (RC transport, 0x00 opcode class).
    pub fn wire_code(self) -> u8 {
        match self {
            RdmaOpcode::SendFirst => 0x00,
            RdmaOpcode::SendMiddle => 0x01,
            RdmaOpcode::SendLast => 0x02,
            RdmaOpcode::SendOnly => 0x04,
            RdmaOpcode::WriteFirst => 0x06,
            RdmaOpcode::WriteMiddle => 0x07,
            RdmaOpcode::WriteLast => 0x08,
            RdmaOpcode::WriteLastImm => 0x09,
            RdmaOpcode::WriteOnly => 0x0a,
            RdmaOpcode::WriteOnlyImm => 0x0b,
            RdmaOpcode::Acknowledge => 0x11,
        }
    }

    /// Inverse of [`RdmaOpcode::wire_code`].
    pub fn from_wire(code: u8) -> Option<Self> {
        Some(match code {
            0x00 => RdmaOpcode::SendFirst,
            0x01 => RdmaOpcode::SendMiddle,
            0x02 => RdmaOpcode::SendLast,
            0x04 => RdmaOpcode::SendOnly,
            0x06 => RdmaOpcode::WriteFirst,
            0x07 => RdmaOpcode::WriteMiddle,
            0x08 => RdmaOpcode::WriteLast,
            0x09 => RdmaOpcode::WriteLastImm,
            0x0a => RdmaOpcode::WriteOnly,
            0x0b => RdmaOpcode::WriteOnlyImm,
            0x11 => RdmaOpcode::Acknowledge,
            _ => return None,
        })
    }
}

/// Ethernet II header (14 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthHeader {
    pub dst: MacAddr,
    pub src: MacAddr,
    /// `0x0800` for IPv4 in this reproduction.
    pub ethertype: u16,
}

pub const ETHERTYPE_IPV4: u16 = 0x0800;

impl EthHeader {
    pub const WIRE_BYTES: usize = 14;

    pub fn new(src: MacAddr, dst: MacAddr) -> Self {
        EthHeader { dst, src, ethertype: ETHERTYPE_IPV4 }
    }
}

/// IPv4 header (20 bytes, no options). The DCP tag lives in the two
/// low-order ToS bits, and the `sRetryNo` retry round rides in the low byte
/// of the identification field — Fig. 4a draws both inside the IP header,
/// which is what lets a trimmed 57-byte header-only packet still carry the
/// retry round back to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    pub src: u32,
    pub dst: u32,
    /// Type-of-Service byte. Bits 0..2 carry the DCP tag; bits 2..8 keep
    /// the DSCP/ECN semantics of the fabric.
    pub tos: u8,
    /// Total length of the IP datagram (header + payload), maintained by the
    /// trimming module when a packet is converted to header-only.
    pub total_len: u16,
    pub ttl: u8,
    /// UDP for RoCEv2.
    pub protocol: u8,
    /// RoCEv2 leaves identification free (no fragmentation); DCP claims the
    /// low byte for `sRetryNo` (§4.5).
    pub identification: u16,
}

pub const IPPROTO_UDP: u8 = 17;
/// The ECN Congestion-Experienced codepoint we model inside the ToS byte.
/// (DCP reserves the two *low* bits for its tag in Fig. 4; to keep tag and
/// ECN independent in the model, ECN-CE is tracked as bit 7.)
pub const TOS_ECN_CE: u8 = 0b1000_0000;

impl Ipv4Header {
    pub const WIRE_BYTES: usize = 20;

    /// Builds a RoCEv2 IPv4 header with the given DCP tag.
    pub fn new(src: u32, dst: u32, tag: DcpTag, total_len: u16) -> Self {
        Ipv4Header {
            src,
            dst,
            tos: tag.bits(),
            total_len,
            ttl: 64,
            protocol: IPPROTO_UDP,
            identification: 0,
        }
    }

    pub fn dcp_tag(&self) -> DcpTag {
        DcpTag::from_bits(self.tos)
    }

    pub fn set_dcp_tag(&mut self, tag: DcpTag) {
        self.tos = (self.tos & !0b11) | tag.bits();
    }

    pub fn ecn_ce(&self) -> bool {
        self.tos & TOS_ECN_CE != 0
    }

    pub fn set_ecn_ce(&mut self, ce: bool) {
        if ce {
            self.tos |= TOS_ECN_CE;
        } else {
            self.tos &= !TOS_ECN_CE;
        }
    }

    /// The sender retry round (`sRetryNo`, §4.5), carried in the low byte
    /// of the identification field so it survives packet trimming.
    pub fn sretry_no(&self) -> u8 {
        self.identification as u8
    }

    pub fn set_sretry_no(&mut self, r: u8) {
        self.identification = (self.identification & 0xff00) | r as u16;
    }
}

/// UDP header (8 bytes). RoCEv2 uses destination port 4791.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// RoCEv2 senders vary the source port for ECMP entropy.
    pub src_port: u16,
    pub dst_port: u16,
    pub len: u16,
}

pub const ROCE_UDP_PORT: u16 = 4791;

impl UdpHeader {
    pub const WIRE_BYTES: usize = 8;

    pub fn roce(src_port: u16, len: u16) -> Self {
        UdpHeader { src_port, dst_port: ROCE_UDP_PORT, len }
    }
}

/// InfiniBand Base Transport Header (12 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bth {
    pub opcode: RdmaOpcode,
    /// Destination Queue Pair Number (24 bits on the wire).
    pub dest_qpn: u32,
    /// Packet Sequence Number (24 bits on the wire; monotonically assigned
    /// per QP in this reproduction and masked at encode time).
    pub psn: u32,
    /// Solicited-event / ack-request bit.
    pub ack_req: bool,
}

impl Bth {
    pub const WIRE_BYTES: usize = 12;
}

/// RDMA Extended Transport Header (16 bytes): remote address for Writes.
///
/// DCP departs from the standard by carrying a RETH in **every** packet of a
/// Write message — first, middle and last — so any out-of-order packet can be
/// placed directly into application memory (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reth {
    /// Remote virtual address *for this packet's payload* (already offset by
    /// the packet's position inside the message).
    pub vaddr: u64,
    pub rkey: u32,
    /// Length of the payload this packet carries toward `vaddr`.
    pub dma_len: u32,
}

impl Reth {
    pub const WIRE_BYTES: usize = 16;
}

/// ACK Extended Transport Header (4 bytes). DCP reuses the 24-bit MSN field
/// to carry the cumulative expected-MSN (`eMSN`, Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aeth {
    pub syndrome: u8,
    /// In DCP ACKs, the receiver's updated `eMSN` (§4.5).
    pub emsn: u32,
}

impl Aeth {
    pub const WIRE_BYTES: usize = 4;
}

/// DCP-specific header extension carried by data packets (Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DcpDataExt {
    /// Message Sequence Number: posting order of the request in the SQ
    /// (3 bytes on the wire; part of the 57-byte trimmed header).
    pub msn: u32,
    /// Send Sequence Number, present only for two-sided operations (Send,
    /// and the last packet of Write-with-Immediate). Identifies the Receive
    /// WQE an OOO packet must match (§4.4). 3 bytes when present.
    ///
    /// Note: `sRetryNo` is *not* here — Fig. 4a places it inside the IP
    /// header (see [`Ipv4Header::sretry_no`]) so trimming preserves it.
    pub ssn: Option<u32>,
}

/// The fully parsed header stack of one packet in the fabric.
///
/// This is the representation the simulator's switches and RNIC models
/// inspect; [`crate::wire`] can render it to exact bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketHeader {
    pub eth: EthHeader,
    pub ip: Ipv4Header,
    pub udp: UdpHeader,
    pub bth: Bth,
    /// Present on data packets.
    pub dcp: Option<DcpDataExt>,
    /// Present on Write-family packets (every packet under DCP).
    pub reth: Option<Reth>,
    /// Present on ACK packets.
    pub aeth: Option<Aeth>,
}

impl PacketHeader {
    /// Wire size of this header stack in bytes.
    ///
    /// A trimmed header-only packet retains only Ethernet + IP + UDP + BTH +
    /// MSN = 57 bytes (footnote 6); SSN (3 B), RETH (16 B) and AETH (4 B)
    /// add to full data/ACK packets when present. `sRetryNo` costs nothing:
    /// it reuses the IP identification byte.
    pub fn wire_header_bytes(&self) -> usize {
        let mut n = EthHeader::WIRE_BYTES
            + Ipv4Header::WIRE_BYTES
            + UdpHeader::WIRE_BYTES
            + Bth::WIRE_BYTES;
        if self.bth.opcode == RdmaOpcode::Acknowledge {
            // ACKs carry only the AETH; the eMSN rides in its MSN field.
            return n + if self.aeth.is_some() { Aeth::WIRE_BYTES } else { 0 };
        }
        if let Some(d) = &self.dcp {
            n += 3; // MSN
            if self.ip.dcp_tag() != DcpTag::HeaderOnly && d.ssn.is_some() {
                n += 3;
            }
        }
        if self.ip.dcp_tag() != DcpTag::HeaderOnly {
            if self.reth.is_some() {
                n += Reth::WIRE_BYTES;
            }
            if self.aeth.is_some() {
                n += Aeth::WIRE_BYTES;
            }
        }
        n
    }

    /// Converts this header into the header-only form produced by the
    /// trimming module: tag becomes `11`, payload-specific extensions are cut
    /// and the IP total length shrinks to the retained 57 bytes.
    pub fn trim_to_header_only(&self) -> PacketHeader {
        let mut ho = *self;
        ho.ip.set_dcp_tag(DcpTag::HeaderOnly);
        ho.ip.total_len = (crate::HO_PACKET_BYTES - EthHeader::WIRE_BYTES) as u16;
        ho.reth = None;
        ho.aeth = None;
        if let Some(d) = &mut ho.dcp {
            // The SSN lives outside the 57 retained bytes; sRetryNo is in
            // the IP header and therefore survives the trim.
            d.ssn = None;
        }
        ho
    }

    /// Implements the receiver-side bounce of a header-only packet (§4.1
    /// step 2): swap source and destination IP so the packet travels back to
    /// the sender. The QPN swap is performed by the receiver RNIC, which
    /// knows the peer QPN from its QP context (see §7 "Back-to-sender").
    pub fn swap_src_dst(&mut self, sender_qpn: u32) {
        std::mem::swap(&mut self.ip.src, &mut self.ip.dst);
        std::mem::swap(&mut self.eth.src, &mut self.eth.dst);
        self.bth.dest_qpn = sender_qpn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_header(ssn: Option<u32>, reth: bool) -> PacketHeader {
        PacketHeader {
            eth: EthHeader::new(MacAddr::from_host(1), MacAddr::from_host(2)),
            ip: Ipv4Header::new(0x0a000001, 0x0a000002, DcpTag::Data, 1081),
            udp: UdpHeader::roce(0xc000, 1061),
            bth: Bth { opcode: RdmaOpcode::SendMiddle, dest_qpn: 7, psn: 42, ack_req: false },
            dcp: Some(DcpDataExt { msn: 3, ssn }),
            reth: if reth { Some(Reth { vaddr: 0x1000, rkey: 1, dma_len: 1024 }) } else { None },
            aeth: None,
        }
    }

    #[test]
    fn dcp_tag_roundtrip() {
        for tag in [DcpTag::NonDcp, DcpTag::Ack, DcpTag::Data, DcpTag::HeaderOnly] {
            assert_eq!(DcpTag::from_bits(tag.bits()), tag);
        }
    }

    #[test]
    fn tag_and_ecn_are_independent() {
        let mut ip = Ipv4Header::new(1, 2, DcpTag::Data, 100);
        ip.set_ecn_ce(true);
        assert_eq!(ip.dcp_tag(), DcpTag::Data);
        assert!(ip.ecn_ce());
        ip.set_dcp_tag(DcpTag::HeaderOnly);
        assert!(ip.ecn_ce());
        assert_eq!(ip.dcp_tag(), DcpTag::HeaderOnly);
    }

    #[test]
    fn opcode_wire_roundtrip() {
        for op in [
            RdmaOpcode::SendFirst,
            RdmaOpcode::SendMiddle,
            RdmaOpcode::SendLast,
            RdmaOpcode::SendOnly,
            RdmaOpcode::WriteFirst,
            RdmaOpcode::WriteMiddle,
            RdmaOpcode::WriteLast,
            RdmaOpcode::WriteOnly,
            RdmaOpcode::WriteLastImm,
            RdmaOpcode::WriteOnlyImm,
            RdmaOpcode::Acknowledge,
        ] {
            assert_eq!(RdmaOpcode::from_wire(op.wire_code()), Some(op));
        }
        assert_eq!(RdmaOpcode::from_wire(0xff), None);
    }

    #[test]
    fn opcode_classification() {
        assert!(RdmaOpcode::SendOnly.is_first() && RdmaOpcode::SendOnly.is_last());
        assert!(RdmaOpcode::WriteFirst.is_first() && !RdmaOpcode::WriteFirst.is_last());
        assert!(RdmaOpcode::WriteLastImm.has_immediate());
        assert!(!RdmaOpcode::WriteLast.has_immediate());
        assert!(RdmaOpcode::SendMiddle.is_send() && !RdmaOpcode::SendMiddle.is_write());
        assert!(RdmaOpcode::WriteOnlyImm.is_write());
    }

    #[test]
    fn header_only_is_57_bytes() {
        let ho = data_header(Some(9), true).trim_to_header_only();
        assert_eq!(ho.wire_header_bytes(), crate::HO_PACKET_BYTES);
        assert_eq!(ho.ip.dcp_tag(), DcpTag::HeaderOnly);
        assert!(ho.reth.is_none());
    }

    #[test]
    fn full_data_header_sizes() {
        // One-sided Write middle packet: base 57 + RETH 16 (sRetryNo rides
        // free inside the IP identification byte).
        let h = data_header(None, true);
        assert_eq!(h.wire_header_bytes(), 57 + 16);
        // Two-sided Send packet: base 57 + SSN 3.
        let h = data_header(Some(5), false);
        assert_eq!(h.wire_header_bytes(), 57 + 3);
    }

    #[test]
    fn sretry_survives_trimming() {
        let mut h = data_header(Some(4), true);
        h.ip.set_sretry_no(3);
        let ho = h.trim_to_header_only();
        assert_eq!(ho.ip.sretry_no(), 3, "retry round rides in the retained IP header");
        assert_eq!(ho.wire_header_bytes(), crate::HO_PACKET_BYTES);
    }

    #[test]
    fn swap_src_dst_bounces_to_sender() {
        let mut h = data_header(None, true).trim_to_header_only();
        let (s, d) = (h.ip.src, h.ip.dst);
        h.swap_src_dst(99);
        assert_eq!(h.ip.src, d);
        assert_eq!(h.ip.dst, s);
        assert_eq!(h.bth.dest_qpn, 99);
    }

    #[test]
    fn trim_preserves_msn_and_psn() {
        let h = data_header(Some(4), true);
        let ho = h.trim_to_header_only();
        assert_eq!(ho.bth.psn, h.bth.psn);
        assert_eq!(ho.dcp.unwrap().msn, h.dcp.unwrap().msn);
        // SSN is not part of the 57-byte retained header.
        assert_eq!(ho.dcp.unwrap().ssn, None);
    }
}
