//! RDMA substrate for the DCP reproduction.
//!
//! This crate provides everything below the transport layer that the paper's
//! RNIC designs assume to exist:
//!
//! * [`headers`] — RoCEv2 wire headers (Ethernet / IPv4 / UDP / BTH / RETH /
//!   AETH) plus the DCP extensions from Fig. 4 of the paper: the 2-bit DCP tag
//!   carried in the IP ToS field, the Message Sequence Number (MSN), the Send
//!   Sequence Number (SSN) for two-sided operations, the `sRetryNo` retry
//!   round in data packets and the `eMSN` cumulative message acknowledgment
//!   in ACK packets.
//! * [`wire`] — byte-level encode/decode of those headers with the exact
//!   field widths of the specification (24-bit PSN/QPN/MSN and so on), used
//!   to validate the 57-byte header-only packet size the paper relies on.
//! * [`qp`] — Queue Pair descriptors: send/receive Work Queue Elements,
//!   Completion Queue entries, and the queue containers an RNIC schedules.
//! * [`verbs`] — a small `libibverbs`-flavoured API (`post_send`,
//!   `post_recv`, `poll_cq`) that examples and workloads program against.
//! * [`memory`] — registered memory regions and the Memory Translation Table
//!   (MTT) used for order-tolerant direct placement.
//! * [`segment`] — message segmentation: turning a Work Request into the
//!   per-packet descriptors (opcode, PSN, remote address) a transport emits.

pub mod headers;
pub mod memory;
pub mod qp;
pub mod segment;
pub mod verbs;
pub mod wire;

pub use headers::{
    Aeth, Bth, DcpTag, EthHeader, Ipv4Header, PacketHeader, RdmaOpcode, Reth, UdpHeader,
};
pub use memory::{MemoryRegion, Mtt, PatternGen};
pub use qp::{Cqe, CqeKind, QpEndpointId, Qpn, RecvWqe, SendWqe, WorkReqOp};
pub use segment::{segment_message, PacketDescriptor};
pub use verbs::{QueuePair, VerbsError};

/// Maximum Transmission Unit used throughout the reproduction.
///
/// The paper assumes a 1 KB MTU ("50 Mpps amounts to 400 Gbps with a 1KB
/// MTU", §4.5) and 16 KB `round_quota` ≈ 16 packets.
pub const MTU: usize = 1024;

/// Size in bytes of the header retained by packet trimming (§4.2, footnote 6):
/// 14 B MAC + 20 B IP + 8 B UDP + 12 B BTH + 3 B MSN.
pub const HO_PACKET_BYTES: usize = 57;

/// Wire overhead of a full DCP data packet header, excluding optional SSN and
/// RETH extensions (see [`headers::PacketHeader::wire_header_bytes`]).
pub const BASE_HEADER_BYTES: usize = HO_PACKET_BYTES;
