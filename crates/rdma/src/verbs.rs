//! A small `libibverbs`-flavoured programming surface.
//!
//! Examples and workload drivers program against this API the way the
//! paper's AllReduce/AllToAll benchmarks program against the verbs API:
//! create a QP, register memory, `post_send` / `post_recv`, then `poll_cq`.
//! Transports consume the posted WQEs from the queues this object owns.

use crate::memory::Mtt;
use crate::qp::{Cqe, Qpn, RecvQueue, RecvWqe, RetransQueue, SendQueue, WorkReqOp};
use std::collections::VecDeque;

/// Errors surfaced by the verbs layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerbsError {
    /// The send queue has reached its configured depth.
    SqFull,
    /// The receive queue has reached its configured depth.
    RqFull,
    /// A Work Request referenced unregistered local memory.
    BadLocalAddr { addr: u64, len: u64 },
}

impl std::fmt::Display for VerbsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerbsError::SqFull => write!(f, "send queue full"),
            VerbsError::RqFull => write!(f, "receive queue full"),
            VerbsError::BadLocalAddr { addr, len } => {
                write!(f, "unregistered local memory [{addr:#x}, +{len})")
            }
        }
    }
}

impl std::error::Error for VerbsError {}

/// One side of a Reliable-Connection Queue Pair, as the application sees it.
///
/// The RetransQ is allocated here alongside SQ/RQ/CQ exactly as §4.3
/// specifies ("allocated along with the SQ, RQ, and CQ during QP creation"),
/// even though only the RNIC ever touches it.
///
/// # Examples
/// ```
/// use dcp_rdma::qp::{Qpn, WorkReqOp};
/// use dcp_rdma::verbs::QueuePair;
/// let mut qp = QueuePair::new(Qpn(7), Qpn(8));
/// qp.register_memory(0x1000, 64 * 1024);
/// let msn = qp
///     .post_send(1, WorkReqOp::Write { remote_addr: 0x9000, rkey: 3 }, 0x1000, 4096, true)
///     .unwrap();
/// assert_eq!(msn, 0);
/// assert_eq!(qp.sq.by_msn(0).unwrap().packet_count(1024), 4);
/// ```
#[derive(Debug)]
pub struct QueuePair {
    pub qpn: Qpn,
    /// Peer QPN, from connection establishment; what the receiver stamps
    /// into bounced header-only packets (§7 "Back-to-sender").
    pub peer_qpn: Qpn,
    pub sq: SendQueue,
    pub rq: RecvQueue,
    pub retransq: RetransQueue,
    cq: VecDeque<Cqe>,
    /// Registered memory translation for this protection domain.
    pub mtt: Mtt,
    max_sq_depth: usize,
    max_rq_depth: usize,
}

impl QueuePair {
    /// Creates a connected QP with default queue depths (1024 entries, far
    /// above what any experiment posts at once).
    pub fn new(qpn: Qpn, peer_qpn: Qpn) -> Self {
        Self::with_depths(qpn, peer_qpn, 1024, 1024)
    }

    pub fn with_depths(qpn: Qpn, peer_qpn: Qpn, max_sq_depth: usize, max_rq_depth: usize) -> Self {
        QueuePair {
            qpn,
            peer_qpn,
            sq: SendQueue::new(),
            rq: RecvQueue::new(),
            retransq: RetransQueue::new(),
            cq: VecDeque::new(),
            mtt: Mtt::new(),
            max_sq_depth,
            max_rq_depth,
        }
    }

    /// Registers `len` bytes of application memory at `base`; returns rkey.
    pub fn register_memory(&mut self, base: u64, len: usize) -> u32 {
        self.mtt.register(base, len)
    }

    /// Posts a send-side Work Request. Returns the assigned MSN.
    pub fn post_send(
        &mut self,
        wr_id: u64,
        op: WorkReqOp,
        local_addr: u64,
        len: u64,
        signaled: bool,
    ) -> Result<u32, VerbsError> {
        if self.sq.len() >= self.max_sq_depth {
            return Err(VerbsError::SqFull);
        }
        if len > 0 && self.mtt.local(local_addr, len).is_err() {
            return Err(VerbsError::BadLocalAddr { addr: local_addr, len });
        }
        Ok(self.sq.post(wr_id, op, local_addr, len, signaled))
    }

    /// Posts a receive buffer.
    pub fn post_recv(&mut self, wr_id: u64, addr: u64, len: u64) -> Result<(), VerbsError> {
        if self.rq.len() >= self.max_rq_depth {
            return Err(VerbsError::RqFull);
        }
        if len > 0 && self.mtt.local(addr, len).is_err() {
            return Err(VerbsError::BadLocalAddr { addr, len });
        }
        self.rq.post(RecvWqe { wr_id, addr, len });
        Ok(())
    }

    /// Drains up to `max` completions, oldest first.
    pub fn poll_cq(&mut self, max: usize) -> Vec<Cqe> {
        let take = max.min(self.cq.len());
        self.cq.drain(..take).collect()
    }

    /// Transport-side: push a completion for the application to poll.
    pub fn push_cqe(&mut self, cqe: Cqe) {
        self.cq.push_back(cqe);
    }

    pub fn cq_depth(&self) -> usize {
        self.cq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::CqeKind;

    fn qp() -> QueuePair {
        let mut qp = QueuePair::new(Qpn(1), Qpn(2));
        qp.register_memory(0x1000, 0x10_000);
        qp
    }

    #[test]
    fn post_send_validates_local_memory() {
        let mut qp = qp();
        assert!(qp.post_send(1, WorkReqOp::Send, 0x1000, 64, true).is_ok());
        assert_eq!(
            qp.post_send(2, WorkReqOp::Send, 0xdead_0000, 64, true),
            Err(VerbsError::BadLocalAddr { addr: 0xdead_0000, len: 64 })
        );
    }

    #[test]
    fn sq_depth_is_enforced() {
        let mut qp = QueuePair::with_depths(Qpn(1), Qpn(2), 2, 2);
        qp.register_memory(0, 1024);
        assert!(qp.post_send(1, WorkReqOp::Send, 0, 8, true).is_ok());
        assert!(qp.post_send(2, WorkReqOp::Send, 0, 8, true).is_ok());
        assert_eq!(qp.post_send(3, WorkReqOp::Send, 0, 8, true), Err(VerbsError::SqFull));
        assert!(qp.post_recv(1, 0, 8).is_ok());
        assert!(qp.post_recv(2, 0, 8).is_ok());
        assert_eq!(qp.post_recv(3, 0, 8), Err(VerbsError::RqFull));
    }

    #[test]
    fn cq_polls_fifo() {
        let mut qp = qp();
        for i in 0..3 {
            qp.push_cqe(Cqe {
                wr_id: i,
                qpn: Qpn(1),
                kind: CqeKind::SendComplete,
                byte_len: 0,
                imm: 0,
            });
        }
        let got = qp.poll_cq(2);
        assert_eq!(got.iter().map(|c| c.wr_id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(qp.cq_depth(), 1);
        assert_eq!(qp.poll_cq(10).len(), 1);
    }

    #[test]
    fn msn_sequence_spans_operation_types() {
        let mut qp = qp();
        let a = qp.post_send(1, WorkReqOp::Send, 0x1000, 8, true).unwrap();
        let b = qp
            .post_send(2, WorkReqOp::Write { remote_addr: 0x100, rkey: 1 }, 0x1000, 8, true)
            .unwrap();
        assert_eq!((a, b), (0, 1));
    }
}
