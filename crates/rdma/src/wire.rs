//! Byte-exact wire encoding of the DCP header stack.
//!
//! The simulator itself moves parsed [`PacketHeader`] structs for speed, but
//! this module keeps the design honest: every header can be rendered to the
//! exact bytes a P4 parser would see, and the round-trip is checked by unit
//! and property tests. It is also what pins the 57-byte trimmed header size.
//!
//! Field widths follow the IBTA/RoCEv2 layouts: QPN, PSN and MSN are 24-bit
//! fields; the DCP extensions are packed exactly as Fig. 4 lays them out
//! (MSN after the BTH; sRetryNo and SSN after the MSN on full data packets;
//! RETH after those for one-sided operations; AETH after the BTH for ACKs).

use crate::headers::*;
use bytes::{Bytes, BytesMut};

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the fixed-size header completed.
    Truncated(&'static str),
    /// A field held a value this reproduction does not model.
    Unsupported(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "truncated {what}"),
            WireError::Unsupported(what) => write!(f, "unsupported {what}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u24(buf: &mut BytesMut, v: u32) {
    buf.put_u8((v >> 16) as u8);
    buf.put_u8((v >> 8) as u8);
    buf.put_u8(v as u8);
}

fn get_u24(buf: &mut Bytes) -> u32 {
    let a = buf.get_u8() as u32;
    let b = buf.get_u8() as u32;
    let c = buf.get_u8() as u32;
    (a << 16) | (b << 8) | c
}

/// Encodes a header stack to wire bytes. PSN/QPN/MSN/SSN are masked to their
/// 24-bit wire width; callers who exceed 2^24 in-flight sequence numbers are
/// responsible for their own wrap handling (no experiment in the paper does).
pub fn encode(h: &PacketHeader) -> Bytes {
    let mut buf = BytesMut::with_capacity(128);
    // Ethernet
    buf.put_slice(&h.eth.dst.0);
    buf.put_slice(&h.eth.src.0);
    buf.put_u16(h.eth.ethertype);
    // IPv4 (20 bytes, no options)
    buf.put_u8(0x45);
    buf.put_u8(h.ip.tos);
    buf.put_u16(h.ip.total_len);
    buf.put_u16(h.ip.identification);
    buf.put_u16(0); // flags + fragment offset
    buf.put_u8(h.ip.ttl);
    buf.put_u8(h.ip.protocol);
    buf.put_u16(0); // checksum: computed by hardware, zero in the model
    buf.put_u32(h.ip.src);
    buf.put_u32(h.ip.dst);
    // UDP
    buf.put_u16(h.udp.src_port);
    buf.put_u16(h.udp.dst_port);
    buf.put_u16(h.udp.len);
    buf.put_u16(0); // checksum
                    // BTH (12 bytes)
    buf.put_u8(h.bth.opcode.wire_code());
    buf.put_u8(if h.bth.ack_req { 0x80 } else { 0x00 }); // SE/M/pad/TVer
    buf.put_u16(0xffff); // P_Key
    buf.put_u8(0); // reserved
    put_u24(&mut buf, h.bth.dest_qpn & 0x00ff_ffff);
    buf.put_u8(0); // A/reserved
    put_u24(&mut buf, h.bth.psn & 0x00ff_ffff);
    let tag = h.ip.dcp_tag();
    if h.bth.opcode == RdmaOpcode::Acknowledge {
        // ACK packets carry only the AETH after the BTH; the eMSN rides in
        // the AETH's 24-bit MSN field (Fig. 4b).
        if let Some(a) = &h.aeth {
            buf.put_u8(a.syndrome);
            put_u24(&mut buf, a.emsn & 0x00ff_ffff);
        }
        return buf.freeze();
    }
    // DCP MSN extension (3 bytes) — part of the 57-byte trimmed header.
    if let Some(d) = &h.dcp {
        put_u24(&mut buf, d.msn & 0x00ff_ffff);
        if tag != DcpTag::HeaderOnly {
            if let Some(ssn) = d.ssn {
                put_u24(&mut buf, ssn & 0x00ff_ffff);
            }
        }
    }
    if tag != DcpTag::HeaderOnly {
        if let Some(r) = &h.reth {
            buf.put_u64(r.vaddr);
            buf.put_u32(r.rkey);
            buf.put_u32(r.dma_len);
        }
        if let Some(a) = &h.aeth {
            buf.put_u8(a.syndrome);
            put_u24(&mut buf, a.emsn & 0x00ff_ffff);
        }
    }
    buf.freeze()
}

/// Decodes a header stack from wire bytes.
///
/// The layout after the BTH is not self-describing on the real wire (it is
/// implied by opcode + DCP tag), and the decoder applies the same rules:
/// ACK opcodes parse an AETH; data opcodes parse MSN, sRetryNo, SSN (Send
/// family and immediate-carrying Writes) and RETH (Write family); header-only
/// tags stop at the MSN.
pub fn decode(bytes: &Bytes) -> Result<PacketHeader, WireError> {
    let mut buf = bytes.clone();
    if buf.remaining()
        < EthHeader::WIRE_BYTES + Ipv4Header::WIRE_BYTES + UdpHeader::WIRE_BYTES + Bth::WIRE_BYTES
    {
        return Err(WireError::Truncated("fixed header stack"));
    }
    let mut dst = [0u8; 6];
    let mut src = [0u8; 6];
    buf.copy_to_slice(&mut dst);
    buf.copy_to_slice(&mut src);
    let ethertype = buf.get_u16();
    if ethertype != ETHERTYPE_IPV4 {
        return Err(WireError::Unsupported("ethertype"));
    }
    let vihl = buf.get_u8();
    if vihl != 0x45 {
        return Err(WireError::Unsupported("ip version/ihl"));
    }
    let tos = buf.get_u8();
    let total_len = buf.get_u16();
    let identification = buf.get_u16();
    let _flags = buf.get_u16();
    let ttl = buf.get_u8();
    let protocol = buf.get_u8();
    let _ipsum = buf.get_u16();
    let ip_src = buf.get_u32();
    let ip_dst = buf.get_u32();
    if protocol != IPPROTO_UDP {
        return Err(WireError::Unsupported("ip protocol"));
    }
    let src_port = buf.get_u16();
    let dst_port = buf.get_u16();
    let udp_len = buf.get_u16();
    let _udpsum = buf.get_u16();
    let opcode = RdmaOpcode::from_wire(buf.get_u8()).ok_or(WireError::Unsupported("bth opcode"))?;
    let flags = buf.get_u8();
    let _pkey = buf.get_u16();
    let _rsvd = buf.get_u8();
    let dest_qpn = get_u24(&mut buf);
    let _a = buf.get_u8();
    let psn = get_u24(&mut buf);

    let ip = Ipv4Header { src: ip_src, dst: ip_dst, tos, total_len, ttl, protocol, identification };
    let tag = ip.dcp_tag();
    let mut header = PacketHeader {
        eth: EthHeader { dst: MacAddr(dst), src: MacAddr(src), ethertype },
        ip,
        udp: UdpHeader { src_port, dst_port, len: udp_len },
        bth: Bth { opcode, dest_qpn, psn, ack_req: flags & 0x80 != 0 },
        dcp: None,
        reth: None,
        aeth: None,
    };

    if opcode == RdmaOpcode::Acknowledge {
        if buf.remaining() < Aeth::WIRE_BYTES {
            return Err(WireError::Truncated("aeth"));
        }
        let syndrome = buf.get_u8();
        let emsn = get_u24(&mut buf);
        header.aeth = Some(Aeth { syndrome, emsn });
        return Ok(header);
    }

    // Data-family packets all carry the 3-byte MSN.
    if buf.remaining() < 3 {
        return Err(WireError::Truncated("msn"));
    }
    let msn = get_u24(&mut buf);
    if tag == DcpTag::HeaderOnly {
        header.dcp = Some(DcpDataExt { msn, ssn: None });
        return Ok(header);
    }
    let needs_ssn = opcode.is_send() || opcode.has_immediate();
    let ssn = if needs_ssn {
        if buf.remaining() < 3 {
            return Err(WireError::Truncated("ssn"));
        }
        Some(get_u24(&mut buf))
    } else {
        None
    };
    header.dcp = Some(DcpDataExt { msn, ssn });
    if opcode.is_write() {
        if buf.remaining() < Reth::WIRE_BYTES {
            return Err(WireError::Truncated("reth"));
        }
        let vaddr = buf.get_u64();
        let rkey = buf.get_u32();
        let dma_len = buf.get_u32();
        header.reth = Some(Reth { vaddr, rkey, dma_len });
    }
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(op: RdmaOpcode, tag: DcpTag) -> PacketHeader {
        PacketHeader {
            eth: EthHeader::new(MacAddr::from_host(3), MacAddr::from_host(4)),
            ip: Ipv4Header::new(0x0a00_0003, 0x0a00_0004, tag, 1081),
            udp: UdpHeader::roce(0xd3a1, 1061),
            bth: Bth { opcode: op, dest_qpn: 0x1234, psn: 0x00ab_cdef, ack_req: true },
            dcp: Some(DcpDataExt { msn: 77, ssn: None }),
            reth: None,
            aeth: None,
        }
    }

    #[test]
    fn encode_len_matches_wire_header_bytes() {
        let mut h = base(RdmaOpcode::WriteMiddle, DcpTag::Data);
        h.reth = Some(Reth { vaddr: 0xdead_beef_0000, rkey: 5, dma_len: 1024 });
        assert_eq!(encode(&h).len(), h.wire_header_bytes());
    }

    #[test]
    fn ho_packet_encodes_to_exactly_57_bytes() {
        let mut h = base(RdmaOpcode::WriteMiddle, DcpTag::Data);
        h.reth = Some(Reth { vaddr: 0x1000, rkey: 5, dma_len: 1024 });
        let ho = h.trim_to_header_only();
        assert_eq!(encode(&ho).len(), crate::HO_PACKET_BYTES);
    }

    #[test]
    fn roundtrip_write_packet() {
        let mut h = base(RdmaOpcode::WriteFirst, DcpTag::Data);
        h.reth = Some(Reth { vaddr: 0xfeed_f00d, rkey: 42, dma_len: 512 });
        let decoded = decode(&encode(&h)).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn roundtrip_send_packet_with_ssn() {
        let mut h = base(RdmaOpcode::SendLast, DcpTag::Data);
        h.dcp = Some(DcpDataExt { msn: 9, ssn: Some(4) });
        let decoded = decode(&encode(&h)).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn roundtrip_write_with_imm_carries_ssn_and_reth() {
        let mut h = base(RdmaOpcode::WriteLastImm, DcpTag::Data);
        h.dcp = Some(DcpDataExt { msn: 6, ssn: Some(3) });
        h.reth = Some(Reth { vaddr: 0xa000, rkey: 7, dma_len: 100 });
        let decoded = decode(&encode(&h)).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn roundtrip_ack_packet() {
        let mut h = base(RdmaOpcode::Acknowledge, DcpTag::Ack);
        h.dcp = None; // ACKs carry eMSN in the AETH, not the data-packet MSN ext
        h.aeth = Some(Aeth { syndrome: 0, emsn: 1234 });
        let decoded = decode(&encode(&h)).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn roundtrip_header_only() {
        let mut h = base(RdmaOpcode::WriteMiddle, DcpTag::Data);
        h.reth = Some(Reth { vaddr: 0x1000, rkey: 5, dma_len: 1024 });
        let ho = h.trim_to_header_only();
        let decoded = decode(&encode(&ho)).unwrap();
        assert_eq!(decoded, ho);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let h = base(RdmaOpcode::SendOnly, DcpTag::Data);
        let mut ok = base(RdmaOpcode::SendOnly, DcpTag::Data);
        ok.dcp = Some(DcpDataExt { msn: 0, ssn: Some(0) });
        let bytes = encode(&ok);
        for cut in [10, 30, 53, bytes.len() - 1] {
            let slice = bytes.slice(0..cut);
            assert!(decode(&slice).is_err(), "cut at {cut} should fail");
        }
        let _ = h;
    }

    #[test]
    fn psn_masked_to_24_bits() {
        let mut h = base(RdmaOpcode::SendOnly, DcpTag::Data);
        h.bth.psn = 0x0100_0001; // exceeds 24 bits
        h.dcp = Some(DcpDataExt { msn: 0, ssn: Some(0) });
        let decoded = decode(&encode(&h)).unwrap();
        assert_eq!(decoded.bth.psn, 0x0000_0001);
    }
}
