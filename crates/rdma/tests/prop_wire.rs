//! Property tests: wire encode/decode round-trips for arbitrary headers, and
//! encoded length always equals the computed header size.

use dcp_rdma::headers::*;
use dcp_rdma::wire::{decode, encode};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = RdmaOpcode> {
    prop_oneof![
        Just(RdmaOpcode::SendFirst),
        Just(RdmaOpcode::SendMiddle),
        Just(RdmaOpcode::SendLast),
        Just(RdmaOpcode::SendOnly),
        Just(RdmaOpcode::WriteFirst),
        Just(RdmaOpcode::WriteMiddle),
        Just(RdmaOpcode::WriteLast),
        Just(RdmaOpcode::WriteOnly),
        Just(RdmaOpcode::WriteLastImm),
        Just(RdmaOpcode::WriteOnlyImm),
    ]
}

prop_compose! {
    fn arb_data_header()(
        op in arb_opcode(),
        src in any::<u32>(),
        dst in any::<u32>(),
        qpn in 0u32..0x0100_0000,
        psn in 0u32..0x0100_0000,
        msn in 0u32..0x0100_0000,
        ssn in 0u32..0x0100_0000,
        sretry in any::<u8>(),
        vaddr in any::<u64>(),
        rkey in any::<u32>(),
        dma_len in any::<u32>(),
        sport in any::<u16>(),
        ecn in any::<bool>(),
        ack_req in any::<bool>(),
    ) -> PacketHeader {
        let mut ip = Ipv4Header::new(src, dst, DcpTag::Data, 1081);
        ip.set_ecn_ce(ecn);
        ip.set_sretry_no(sretry);
        let needs_ssn = op.is_send() || op.has_immediate();
        PacketHeader {
            eth: EthHeader::new(MacAddr::from_host(1), MacAddr::from_host(2)),
            ip,
            udp: UdpHeader::roce(sport, 1061),
            bth: Bth { opcode: op, dest_qpn: qpn, psn, ack_req },
            dcp: Some(DcpDataExt { msn, ssn: needs_ssn.then_some(ssn) }),
            reth: op.is_write().then_some(Reth { vaddr, rkey, dma_len }),
            aeth: None,
        }
    }
}

proptest! {
    #[test]
    fn data_header_roundtrips(h in arb_data_header()) {
        let bytes = encode(&h);
        prop_assert_eq!(bytes.len(), h.wire_header_bytes());
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(decoded, h);
    }

    #[test]
    fn trimmed_header_roundtrips_at_57_bytes(h in arb_data_header()) {
        let ho = h.trim_to_header_only();
        let bytes = encode(&ho);
        prop_assert_eq!(bytes.len(), dcp_rdma::HO_PACKET_BYTES);
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(decoded.bth.psn, h.bth.psn);
        prop_assert_eq!(decoded.dcp.unwrap().msn, h.dcp.unwrap().msn);
        prop_assert_eq!(decoded.ip.dcp_tag(), DcpTag::HeaderOnly);
        // ECN marking survives trimming (the ToS byte is retained).
        prop_assert_eq!(decoded.ip.ecn_ce(), h.ip.ecn_ce());
    }

    #[test]
    fn ack_header_roundtrips(emsn in 0u32..0x0100_0000, syndrome in any::<u8>(), qpn in 0u32..0x0100_0000) {
        let h = PacketHeader {
            eth: EthHeader::new(MacAddr::from_host(1), MacAddr::from_host(2)),
            ip: Ipv4Header::new(0xa, 0xb, DcpTag::Ack, 62),
            udp: UdpHeader::roce(0x1000, 42),
            bth: Bth { opcode: RdmaOpcode::Acknowledge, dest_qpn: qpn, psn: 0, ack_req: false },
            dcp: None,
            reth: None,
            aeth: Some(Aeth { syndrome, emsn }),
        };
        let bytes = encode(&h);
        prop_assert_eq!(bytes.len(), h.wire_header_bytes());
        prop_assert_eq!(decode(&bytes).unwrap(), h);
    }

    #[test]
    fn decode_never_panics_on_random_bytes(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode(&bytes::Bytes::from(data));
    }
}
