//! `dcp-workloads` — traffic generators, experiment runners and statistics
//! for the DCP evaluation (§6).
//!
//! * [`websearch`] — the WebSearch (DCTCP) flow-size distribution;
//! * [`arrivals`] — Poisson background traffic at a target load and
//!   N-to-1 incast bursts;
//! * [`collectives`] — ring AllReduce and AllToAll schedules with
//!   receive-gated pipelining;
//! * [`runner`] — installs per-flow transports (GBN / IRN / MP-RDMA /
//!   RACK-TLP / timeout-only / DCP, with optional DCQCN or BDP-window CC),
//!   injects flows, collects FCTs;
//! * [`stats`] — FCT slowdowns, percentiles and size-bucketed series;
//! * [`tenants`] — multi-tenant mixes (websearch + storage + AllReduce
//!   sharing one fabric), every flow tagged with its [`TenantId`].

pub mod arrivals;
pub mod collectives;
pub mod io;
pub mod runner;
pub mod stats;
pub mod tenants;
pub mod websearch;

pub use arrivals::{
    incast_flows, merge, poisson_flows, poisson_flows_until, tag_tenant, FlowSpec, TenantId,
};
pub use collectives::{run_collective, Collective, Group, GroupResult};
pub use io::{parse_trace, to_csv, trace_to_csv, TraceError};
pub use runner::{
    endpoint_pair, endpoint_pair_opts, run_flows, run_flows_hooked, run_flows_opts, CcKind,
    FlowRecord, RunOpts, TransportKind, WindowHook,
};
pub use stats::{
    overall_slowdown, percentile, slowdown_by_size, unfinished, BucketRow, FctSummary, IdealFct,
};
pub use tenants::{
    ring_allreduce_flows, tenant_flows, tenant_incast_surge, tenant_mix, TenantKind, TenantSpec,
};
pub use websearch::SizeDist;
