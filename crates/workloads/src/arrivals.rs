//! Flow arrival processes: Poisson background traffic at a target load and
//! periodic N-to-1 incast bursts (§6.2's traffic mix).

use crate::websearch::SizeDist;
use dcp_netsim::time::{Nanos, SEC};
use rand::rngs::StdRng;
use rand::Rng;

/// Which tenant a flow belongs to. Tenant 0 is the default ("untenanted")
/// id every legacy generator emits; the multi-tenant soak mixes tag their
/// flows so the id rides through [`FlowSpec`], the runner's endpoint
/// registration (host-egress WRR keys on it) and per-tenant telemetry
/// summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TenantId(pub u8);

/// One flow to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Index into the topology's host list.
    pub src: usize,
    pub dst: usize,
    pub bytes: u64,
    pub start: Nanos,
    /// Marks incast flows so results can be reported separately (Fig. 2b).
    pub incast: bool,
    /// Owning tenant; 0 for single-tenant experiments.
    pub tenant: TenantId,
}

impl FlowSpec {
    /// Builder-style tenant tag.
    pub fn with_tenant(mut self, t: TenantId) -> Self {
        self.tenant = t;
        self
    }
}

/// Tags every flow in `flows` with `tenant` (the multi-tenant mixes tag
/// whole generator outputs at once).
pub fn tag_tenant(mut flows: Vec<FlowSpec>, tenant: TenantId) -> Vec<FlowSpec> {
    for f in &mut flows {
        f.tenant = tenant;
    }
    flows
}

/// Poisson arrivals of randomly sized flows between random host pairs,
/// dimensioned so the aggregate offered load is `load` of the hosts'
/// access bandwidth.
pub fn poisson_flows(
    rng: &mut StdRng,
    dist: &SizeDist,
    n_hosts: usize,
    host_gbps: f64,
    load: f64,
    n_flows: usize,
) -> Vec<FlowSpec> {
    assert!(n_hosts >= 2);
    // λ (flows/sec) = load · capacity / mean flow size.
    let bytes_per_sec = load * host_gbps * 1e9 / 8.0 * n_hosts as f64;
    let lambda = bytes_per_sec / dist.mean();
    let mut t = 0.0f64;
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() / lambda;
        let src = rng.random_range(0..n_hosts);
        let mut dst = rng.random_range(0..n_hosts - 1);
        if dst >= src {
            dst += 1;
        }
        flows.push(FlowSpec {
            src,
            dst,
            bytes: dist.sample(rng),
            start: (t * SEC as f64) as Nanos,
            incast: false,
            tenant: TenantId(0),
        });
    }
    flows
}

/// [`poisson_flows`], but bounded by a time horizon instead of a flow
/// count — the soak harness dimensions tenants by how long they must keep
/// offering load, not by how many flows that happens to take.
pub fn poisson_flows_until(
    rng: &mut StdRng,
    dist: &SizeDist,
    n_hosts: usize,
    host_gbps: f64,
    load: f64,
    horizon: Nanos,
) -> Vec<FlowSpec> {
    assert!(n_hosts >= 2);
    let bytes_per_sec = load * host_gbps * 1e9 / 8.0 * n_hosts as f64;
    let lambda = bytes_per_sec / dist.mean();
    let mut t = 0.0f64;
    let mut flows = Vec::new();
    loop {
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() / lambda;
        let start = (t * SEC as f64) as Nanos;
        if start >= horizon {
            return flows;
        }
        let src = rng.random_range(0..n_hosts);
        let mut dst = rng.random_range(0..n_hosts - 1);
        if dst >= src {
            dst += 1;
        }
        flows.push(FlowSpec {
            src,
            dst,
            bytes: dist.sample(rng),
            start,
            incast: false,
            tenant: TenantId(0),
        });
    }
}

/// Periodic N-to-1 incast: every burst, `fan_in` random senders each send
/// `bytes` to one random victim. The burst period is chosen so the incast
/// traffic adds `load` of one host's bandwidth in aggregate.
#[allow(clippy::too_many_arguments)]
pub fn incast_flows(
    rng: &mut StdRng,
    n_hosts: usize,
    host_gbps: f64,
    load: f64,
    fan_in: usize,
    bytes: u64,
    duration: Nanos,
) -> Vec<FlowSpec> {
    assert!(n_hosts > fan_in);
    let burst_bytes = (fan_in as u64 * bytes) as f64;
    let bytes_per_sec = load * host_gbps * 1e9 / 8.0 * n_hosts as f64;
    let period = (burst_bytes / bytes_per_sec * SEC as f64) as Nanos;
    let mut flows = Vec::new();
    let mut t = period.max(1);
    while t < duration {
        let dst = rng.random_range(0..n_hosts);
        let mut senders = Vec::with_capacity(fan_in);
        while senders.len() < fan_in {
            let s = rng.random_range(0..n_hosts);
            if s != dst && !senders.contains(&s) {
                senders.push(s);
            }
        }
        for src in senders {
            flows.push(FlowSpec { src, dst, bytes, start: t, incast: true, tenant: TenantId(0) });
        }
        t += period.max(1);
    }
    flows
}

/// Merges flow lists into arrival order.
pub fn merge(mut a: Vec<FlowSpec>, b: Vec<FlowSpec>) -> Vec<FlowSpec> {
    a.extend(b);
    a.sort_by_key(|f| f.start);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_load_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = SizeDist::websearch();
        let flows = poisson_flows(&mut rng, &dist, 64, 100.0, 0.3, 20_000);
        let span = flows.last().unwrap().start as f64 / SEC as f64;
        let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered = total_bytes as f64 * 8.0 / span / 1e9; // Gbps
        let want = 0.3 * 100.0 * 64.0;
        assert!(
            (offered - want).abs() / want < 0.05,
            "offered {offered:.0} Gbps vs target {want:.0}"
        );
    }

    #[test]
    fn poisson_never_self_flows() {
        let mut rng = StdRng::seed_from_u64(4);
        let flows = poisson_flows(&mut rng, &SizeDist::websearch(), 4, 100.0, 0.5, 5_000);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn incast_bursts_share_destination() {
        let mut rng = StdRng::seed_from_u64(5);
        let flows = incast_flows(&mut rng, 64, 100.0, 0.1, 16, 64 * 1024, SEC / 100);
        assert!(!flows.is_empty());
        for chunk in flows.chunks(16) {
            let dst = chunk[0].dst;
            assert!(chunk.iter().all(|f| f.dst == dst && f.src != dst && f.incast));
        }
    }

    #[test]
    fn poisson_until_respects_horizon_and_load() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = SizeDist::websearch();
        let horizon = SEC / 100;
        let flows = poisson_flows_until(&mut rng, &dist, 64, 100.0, 0.3, horizon);
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.start < horizon && f.src != f.dst));
        let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered = total_bytes as f64 * 8.0 / (horizon as f64 / SEC as f64) / 1e9;
        let want = 0.3 * 100.0 * 64.0;
        assert!((offered - want).abs() / want < 0.15, "offered {offered:.0} vs {want:.0}");
    }

    #[test]
    fn tag_tenant_tags_every_flow() {
        let mut rng = StdRng::seed_from_u64(9);
        let flows = poisson_flows(&mut rng, &SizeDist::websearch(), 8, 100.0, 0.2, 50);
        assert!(flows.iter().all(|f| f.tenant == TenantId(0)));
        let tagged = tag_tenant(flows, TenantId(2));
        assert!(tagged.iter().all(|f| f.tenant == TenantId(2)));
    }

    #[test]
    fn merge_sorts_by_start() {
        let a = vec![FlowSpec {
            src: 0,
            dst: 1,
            bytes: 1,
            start: 10,
            incast: false,
            tenant: TenantId(0),
        }];
        let b = vec![FlowSpec {
            src: 1,
            dst: 0,
            bytes: 1,
            start: 5,
            incast: true,
            tenant: TenantId(0),
        }];
        let m = merge(a, b);
        assert_eq!(m[0].start, 5);
    }
}
