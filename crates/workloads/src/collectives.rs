//! Collective communication schedulers: ring AllReduce and AllToAll
//! (§6.1 testbed AI workloads, §6.2 large-scale AI workloads).
//!
//! * **Ring AllReduce**: `total` bytes split into `n` slices; each member
//!   sends a slice to its ring successor for `2(n−1)` steps (reduce-scatter
//!   then all-gather), each step gated on receiving the predecessor's slice
//!   of the previous step.
//! * **AllToAll**: each member sends `total/n` to every other member,
//!   all at once.
//!
//! The Job Completion Time of a group is the completion of its last flow
//! (§6.2: "the time of the last completed flow within each group").

use crate::runner::{endpoint_pair, CcKind, TransportKind};
use dcp_netsim::endpoint::CompletionKind;
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::Nanos;
use dcp_netsim::topology::Topology;
use dcp_netsim::Simulator;
use dcp_rdma::qp::WorkReqOp;
use std::collections::HashMap;

/// One collective group: the member host indices and the total bytes moved.
#[derive(Debug, Clone)]
pub struct Group {
    pub members: Vec<usize>,
    pub total_bytes: u64,
}

/// Which collective to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    RingAllReduce,
    AllToAll,
}

/// Result for one group.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// Job completion time (last flow completion).
    pub jct: Nanos,
    /// Individual message FCTs (the Fig. 14b/14d CDF input).
    pub fcts: Vec<Nanos>,
}

/// Posts one collective slice as a chain of ≤ 1 MB messages (the NCCL-style
/// posting pattern); returns the message count.
fn post_slice(
    sim: &mut Simulator,
    host: dcp_netsim::packet::NodeId,
    flow: FlowId,
    bytes: u64,
    wr_base: u64,
) -> u64 {
    let chunk = dcp_core::config::MSG_CHUNK_BYTES;
    let n = bytes.max(1).div_ceil(chunk);
    let mut remaining = bytes.max(1);
    for i in 0..n {
        let len = remaining.min(chunk);
        remaining -= len;
        sim.post(
            host,
            flow,
            wr_base + i,
            WorkReqOp::Write { remote_addr: 0x100_0000 + i * chunk, rkey: 1 },
            len,
        );
    }
    n
}

/// Ring state: for each ring flow (i → i+1), which step to post next and
/// which ring flow its completions release (the successor (i+1 → i+2)).
struct RingFlow {
    flow: FlowId,
    src_host: usize,
    steps_posted: u32,
    succ_ix: usize,
    /// Messages per step (slice chunking).
    chunks_per_step: u64,
    /// Chunk completions seen in the step currently arriving.
    recv_in_step: u64,
}

/// Runs the collective across all groups simultaneously (they start at
/// t = 0 together, as in §6.1/§6.2). Returns per-group results.
pub fn run_collective(
    sim: &mut Simulator,
    topo: &Topology,
    kind: TransportKind,
    cc: CcKind,
    groups: &[Group],
    which: Collective,
    deadline: Nanos,
) -> Vec<GroupResult> {
    let mut next_flow_id = 1u32;
    // flow id → (group ix, ring position) for AllReduce chaining.
    let mut ring_flows: HashMap<u32, usize> = HashMap::new();
    let mut rings: Vec<RingFlow> = Vec::new();
    let mut group_of_flow: HashMap<u32, usize> = HashMap::new();
    let mut expected: Vec<usize> = vec![0; groups.len()];
    let mut results: Vec<GroupResult> =
        groups.iter().map(|_| GroupResult { jct: 0, fcts: Vec::new() }).collect();

    for (gix, g) in groups.iter().enumerate() {
        let n = g.members.len();
        assert!(n >= 2);
        let slice = (g.total_bytes / n as u64).max(1);
        match which {
            Collective::RingAllReduce => {
                let steps = 2 * (n as u32 - 1);
                let chunks = slice.div_ceil(dcp_core::config::MSG_CHUNK_BYTES);
                expected[gix] = n * steps as usize * chunks as usize;
                let base = rings.len();
                for i in 0..n {
                    let src = g.members[i];
                    let flow = FlowId(next_flow_id);
                    next_flow_id += 1;
                    let dst = g.members[(i + 1) % n];
                    let (tx, rx) = endpoint_pair(kind, cc, flow, topo.hosts[src], topo.hosts[dst]);
                    sim.install_endpoint(topo.hosts[src], flow, tx);
                    sim.install_endpoint(topo.hosts[dst], flow, rx);
                    group_of_flow.insert(flow.0, gix);
                    ring_flows.insert(flow.0, rings.len());
                    rings.push(RingFlow {
                        flow,
                        src_host: src,
                        steps_posted: 1, // step 0 posts immediately below
                        succ_ix: base + (i + 1) % n,
                        chunks_per_step: chunks,
                        recv_in_step: 0,
                    });
                    post_slice(sim, topo.hosts[src], flow, slice, 0);
                }
                let _ = steps;
            }
            Collective::AllToAll => {
                let chunks = slice.div_ceil(dcp_core::config::MSG_CHUNK_BYTES);
                expected[gix] = n * (n - 1) * chunks as usize;
                for i in 0..n {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let flow = FlowId(next_flow_id);
                        next_flow_id += 1;
                        let (src, dst) = (g.members[i], g.members[j]);
                        let (tx, rx) =
                            endpoint_pair(kind, cc, flow, topo.hosts[src], topo.hosts[dst]);
                        sim.install_endpoint(topo.hosts[src], flow, tx);
                        sim.install_endpoint(topo.hosts[dst], flow, rx);
                        group_of_flow.insert(flow.0, gix);
                        post_slice(sim, topo.hosts[src], flow, slice, 0);
                    }
                }
            }
        }
    }

    let mut done: Vec<usize> = vec![0; groups.len()];
    let total_expected: usize = expected.iter().sum();
    let mut total_done = 0usize;
    // Reused across steps: this loop re-posts work mid-drain, so it buffers
    // completions instead of using the zero-copy closure API.
    let mut comps = Vec::new();
    while total_done < total_expected && sim.now() < deadline {
        if sim.advance().is_none() {
            break;
        }
        sim.drain_completions_into(&mut comps);
        for &c in &comps {
            if c.kind != CompletionKind::RecvComplete {
                continue;
            }
            let gix = group_of_flow[&c.flow.0];
            results[gix].fcts.push(c.at);
            results[gix].jct = results[gix].jct.max(c.at);
            done[gix] += 1;
            total_done += 1;
            // Ring chaining: receiving step k on flow (i-1 → i) releases
            // step k+1 on flow (i → i+1).
            if which == Collective::RingAllReduce {
                let g = &groups[gix];
                let n = g.members.len();
                let steps = 2 * (n as u32 - 1);
                let slice = (g.total_bytes / n as u64).max(1);
                let rix = ring_flows[&c.flow.0];
                rings[rix].recv_in_step += 1;
                if rings[rix].recv_in_step == rings[rix].chunks_per_step {
                    // Full slice of the current step arrived at member i+1:
                    // release the successor flow's next step.
                    rings[rix].recv_in_step = 0;
                    let succ_ix = rings[rix].succ_ix;
                    let succ = &mut rings[succ_ix];
                    if succ.steps_posted < steps {
                        let step = succ.steps_posted as u64;
                        succ.steps_posted += 1;
                        let (host, flow, chunks) =
                            (topo.hosts[succ.src_host], succ.flow, succ.chunks_per_step);
                        post_slice(sim, host, flow, slice, step * chunks);
                    }
                }
            }
        }
    }
    assert_eq!(
        total_done,
        total_expected,
        "collective did not finish by deadline: {total_done}/{total_expected} at {}",
        sim.now()
    );
    // Same lenient conservation check `run_flows` applies.
    #[cfg(debug_assertions)]
    {
        let c = sim.check_conservation(false);
        debug_assert!(c.is_ok(), "collective conservation violated: {:?}", c.violations);
    }
    results
}
