//! FCT statistics: slowdowns, percentiles and size-bucketed series — the
//! y-axes of Figs. 13–16.
//!
//! Percentiles are computed from log-linear [`LogHistogram`]s (O(1) record,
//! ≤ 1.6% relative quantization error) instead of sorting the full sample
//! set; the exact [`percentile`] remains for small slices and as the
//! reference the histogram tests compare against.

use crate::runner::FlowRecord;
use dcp_netsim::time::Nanos;
use dcp_telemetry::LogHistogram;
use serde::Serialize;

/// Fixed-point scale for recording f64 slowdowns in integer histograms:
/// four decimal digits, far below the histogram's own quantization error.
const SLOWDOWN_SCALE: f64 = 1e4;

fn slowdown_to_fixed(s: f64) -> u64 {
    (s * SLOWDOWN_SCALE).round() as u64
}

fn fixed_to_slowdown(v: u64) -> f64 {
    v as f64 / SLOWDOWN_SCALE
}

/// Ideal (empty-network) FCT model: one-way propagation plus wire
/// serialization including per-packet header overhead.
#[derive(Debug, Clone, Copy)]
pub struct IdealFct {
    /// One-way propagation + switching delay along the path.
    pub base_delay: Nanos,
    pub gbps: f64,
    pub mtu: usize,
    /// Per-packet wire header bytes.
    pub header: usize,
}

impl IdealFct {
    pub fn intra_dc_100g() -> Self {
        // host→leaf→spine→leaf→host at 1 µs per hop.
        IdealFct { base_delay: 4_000, gbps: 100.0, mtu: 1024, header: 74 }
    }

    pub fn ideal(&self, bytes: u64) -> Nanos {
        let pkts = bytes.div_ceil(self.mtu as u64).max(1);
        let wire = bytes + pkts * self.header as u64;
        self.base_delay + (wire as f64 * 8.0 / self.gbps).ceil() as Nanos
    }

    pub fn slowdown(&self, bytes: u64, fct: Nanos) -> f64 {
        (fct as f64 / self.ideal(bytes) as f64).max(1.0)
    }
}

/// Histogram summary of a run's completed flows: FCT and slowdown
/// distributions, ready for percentile queries and structured export.
#[derive(Debug, Clone)]
pub struct FctSummary {
    /// Flow completion times in nanoseconds.
    pub fct: LogHistogram,
    /// Slowdowns in fixed-point (see [`FctSummary::slowdown_p`]).
    slowdown: LogHistogram,
    /// Flows that never completed before the deadline.
    pub unfinished: usize,
}

impl FctSummary {
    pub fn from_records(records: &[FlowRecord], ideal: &IdealFct) -> Self {
        let mut fct = LogHistogram::default();
        let mut slowdown = LogHistogram::default();
        let mut unfinished = 0;
        for r in records {
            match r.fct {
                Some(t) => {
                    fct.record(t);
                    slowdown.record(slowdown_to_fixed(ideal.slowdown(r.spec.bytes, t)));
                }
                None => unfinished += 1,
            }
        }
        FctSummary { fct, slowdown, unfinished }
    }

    pub fn flows(&self) -> u64 {
        self.fct.count()
    }

    /// FCT percentile in nanoseconds.
    pub fn fct_p(&self, p: f64) -> u64 {
        self.fct.value_at_percentile(p)
    }

    /// Slowdown percentile (unitless, ≥ 1 when any flow completed).
    pub fn slowdown_p(&self, p: f64) -> f64 {
        fixed_to_slowdown(self.slowdown.value_at_percentile(p))
    }

    pub fn mean_slowdown(&self) -> f64 {
        self.slowdown.mean() / SLOWDOWN_SCALE
    }

    /// The standard `(p50, p99, p999)` FCT tuple in nanoseconds.
    pub fn fct_p50_p99_p999(&self) -> (u64, u64, u64) {
        self.fct.p50_p99_p999()
    }

    /// Fraction of completed flows whose slowdown exceeded `slo` — the
    /// workload-level SLO-burn companion to dcp-scope's per-message
    /// monitor, at the slowdown histogram's bucket granularity.
    pub fn slo_burn(&self, slo: f64) -> f64 {
        if self.fct.count() == 0 {
            return 0.0;
        }
        self.slowdown.count_above(slowdown_to_fixed(slo)) as f64 / self.fct.count() as f64
    }
}

/// Percentile over a sorted-or-not slice (nearest-rank). Exact — kept for
/// small slices and as the reference for the histogram-backed paths.
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p));
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (values.len() as f64 - 1.0)).round() as usize;
    values[rank.min(values.len() - 1)]
}

/// One row of a Fig. 13-style series: a flow-size bucket with slowdown
/// percentiles.
#[derive(Debug, Clone, Serialize)]
pub struct BucketRow {
    /// Upper edge of the bucket (bytes).
    pub size: u64,
    pub flows: usize,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub mean: f64,
}

/// Buckets completed flows by size (log-spaced edges) and reports slowdown
/// percentiles per bucket.
pub fn slowdown_by_size(
    records: &[FlowRecord],
    ideal: &IdealFct,
    n_buckets: usize,
) -> Vec<BucketRow> {
    let done: Vec<_> = records.iter().filter(|r| r.fct.is_some()).collect();
    if done.is_empty() {
        return Vec::new();
    }
    let min_s = done.iter().map(|r| r.spec.bytes).min().unwrap().max(1) as f64;
    let max_s = done.iter().map(|r| r.spec.bytes).max().unwrap() as f64;
    let ratio = (max_s / min_s).powf(1.0 / n_buckets as f64).max(1.0 + 1e-9);
    // Assign each flow to its log-spaced bucket; per-bucket histograms
    // replace per-bucket sorted vectors.
    let mut buckets: Vec<LogHistogram> = vec![LogHistogram::default(); n_buckets];
    for r in &done {
        let b = (r.spec.bytes.max(1)) as f64;
        let ix = ((b / min_s).ln() / ratio.ln()).floor() as usize;
        let ix = ix.min(n_buckets - 1);
        buckets[ix].record(slowdown_to_fixed(ideal.slowdown(r.spec.bytes, r.fct.unwrap())));
    }
    let mut rows = Vec::new();
    for (i, sl) in buckets.into_iter().enumerate() {
        if sl.is_empty() {
            continue;
        }
        rows.push(BucketRow {
            size: (min_s * ratio.powi(i as i32 + 1)) as u64,
            flows: sl.count() as usize,
            p50: fixed_to_slowdown(sl.value_at_percentile(50.0)),
            p95: fixed_to_slowdown(sl.value_at_percentile(95.0)),
            p99: fixed_to_slowdown(sl.value_at_percentile(99.0)),
            mean: sl.mean() / SLOWDOWN_SCALE,
        });
    }
    rows
}

/// Overall percentile of slowdown across all completed flows
/// (histogram-backed; `NaN` when nothing completed, like [`percentile`]).
pub fn overall_slowdown(records: &[FlowRecord], ideal: &IdealFct, p: f64) -> f64 {
    let mut sl = LogHistogram::default();
    for r in records {
        if let Some(f) = r.fct {
            sl.record(slowdown_to_fixed(ideal.slowdown(r.spec.bytes, f)));
        }
    }
    if sl.is_empty() {
        return f64::NAN;
    }
    fixed_to_slowdown(sl.value_at_percentile(p))
}

/// Count of flows that never completed (deadline hit).
pub fn unfinished(records: &[FlowRecord]) -> usize {
    records.iter().filter(|r| r.fct.is_none()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::FlowSpec;
    use dcp_netsim::stats::TransportStats;

    fn rec(bytes: u64, fct: Nanos) -> FlowRecord {
        FlowRecord {
            spec: FlowSpec {
                src: 0,
                dst: 1,
                bytes,
                start: 0,
                incast: false,
                tenant: crate::arrivals::TenantId(0),
            },
            fct: Some(fct),
            tx: TransportStats::default(),
            rx: TransportStats::default(),
        }
    }

    #[test]
    fn ideal_fct_scales_with_size() {
        let m = IdealFct::intra_dc_100g();
        // 1 KB: 4 µs base + (1024+74)·8/100 ≈ 88 ns.
        assert_eq!(m.ideal(1024), 4_000 + 88);
        assert!(m.ideal(1 << 20) > m.ideal(1024));
    }

    #[test]
    fn slowdown_floors_at_one() {
        let m = IdealFct::intra_dc_100g();
        assert_eq!(m.slowdown(1024, 1), 1.0);
        assert!((m.slowdown(1024, 2 * m.ideal(1024)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slo_burn_counts_the_slow_tail() {
        let m = IdealFct::intra_dc_100g();
        let ideal = m.ideal(1024);
        // Three on-time flows, one 10x over ideal.
        let records =
            vec![rec(1024, ideal), rec(1024, ideal), rec(1024, 2 * ideal), rec(1024, 10 * ideal)];
        let s = FctSummary::from_records(&records, &m);
        assert!((s.slo_burn(4.0) - 0.25).abs() < 1e-9);
        assert_eq!(s.slo_burn(100.0), 0.0);
        let empty = FctSummary::from_records(&[], &m);
        assert_eq!(empty.slo_burn(4.0), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&mut v, 50.0), 3.0);
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
        assert!(percentile(&mut [], 50.0).is_nan());
    }

    #[test]
    fn bucketing_covers_all_flows() {
        let m = IdealFct::intra_dc_100g();
        let records: Vec<_> =
            (0..100).map(|i| rec(1024 << (i % 10), 10_000 * (i as u64 + 1))).collect();
        let rows = slowdown_by_size(&records, &m, 10);
        assert_eq!(rows.iter().map(|r| r.flows).sum::<usize>(), 100);
        assert!(rows.iter().all(|r| r.p50 <= r.p95 && r.p95 <= r.p99));
    }

    #[test]
    fn histogram_backed_slowdowns_track_exact_sort() {
        let m = IdealFct::intra_dc_100g();
        let records: Vec<_> = (1..=1000u64)
            .map(|i| rec(1024 * (1 + i % 7), 4_000 + 137 * i * (1 + i % 13)))
            .collect();
        for p in [50.0, 95.0, 99.0] {
            let mut exact: Vec<f64> =
                records.iter().map(|r| m.slowdown(r.spec.bytes, r.fct.unwrap())).collect();
            let e = percentile(&mut exact, p);
            let got = overall_slowdown(&records, &m, p);
            // One histogram bucket (≤1.6%) plus one rank of convention skew.
            assert!((got - e).abs() / e < 0.03, "p{p}: histogram {got} vs exact {e}");
        }
    }

    #[test]
    fn fct_summary_percentiles_and_unfinished() {
        let m = IdealFct::intra_dc_100g();
        let mut records: Vec<_> = (1..=100u64).map(|i| rec(4096, 5_000 * i)).collect();
        records.push(FlowRecord { fct: None, ..records[0] });
        let s = FctSummary::from_records(&records, &m);
        assert_eq!(s.flows(), 100);
        assert_eq!(s.unfinished, 1);
        let (p50, p99, p999) = s.fct_p50_p99_p999();
        assert!(p50 <= p99 && p99 <= p999);
        // p50 of 5k,10k,…,500k is 250k; allow one bucket of quantization.
        assert!((p50 as f64 - 250_000.0).abs() / 250_000.0 < 0.02, "p50 {p50}");
        assert_eq!(p999, 500_000);
        assert!(s.slowdown_p(50.0) >= 1.0);
        assert!(s.mean_slowdown() >= 1.0);
    }

    #[test]
    fn unfinished_counts_missing_fct() {
        let mut records = vec![rec(1024, 100)];
        records.push(FlowRecord { fct: None, ..records[0] });
        assert_eq!(unfinished(&records), 1);
    }
}
