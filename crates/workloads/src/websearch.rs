//! Flow-size distributions, chiefly the WebSearch (DCTCP) distribution the
//! paper's general-workload experiments use (§6.2: "60% of flows below
//! 200 KB, 37% between 200 KB and 10 MB, and 3% exceeding 10 MB").

use rand::rngs::StdRng;
use rand::Rng;

/// A piecewise-linear CDF over flow sizes, sampled by inverse transform.
///
/// # Examples
/// ```
/// use dcp_workloads::SizeDist;
/// use rand::{rngs::StdRng, SeedableRng};
/// let d = SizeDist::websearch();
/// assert!((d.mean() - 1.6e6).abs() < 4e5, "mean ≈ 1.6 MB");
/// let mut rng = StdRng::seed_from_u64(7);
/// let s = d.sample(&mut rng);
/// assert!(s >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct SizeDist {
    /// `(size_bytes, cdf)` points, strictly increasing in both fields,
    /// starting at cdf 0 and ending at cdf 1.
    points: Vec<(f64, f64)>,
}

impl SizeDist {
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2);
        assert_eq!(points.first().unwrap().1, 0.0);
        assert_eq!(points.last().unwrap().1, 1.0);
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1, "CDF must be increasing");
        }
        SizeDist { points }
    }

    /// The WebSearch workload (DCTCP measurements), with the NS3-community
    /// breakpoints. Mean ≈ 1.6 MB.
    pub fn websearch() -> Self {
        SizeDist::new(vec![
            (1.0, 0.0),
            (10_000.0, 0.15),
            (20_000.0, 0.20),
            (30_000.0, 0.30),
            (50_000.0, 0.40),
            (80_000.0, 0.53),
            (200_000.0, 0.60),
            (1_000_000.0, 0.70),
            (2_000_000.0, 0.80),
            (5_000_000.0, 0.90),
            (10_000_000.0, 0.97),
            (30_000_000.0, 1.0),
        ])
    }

    /// A cloud block/object storage mix: dominated by small metadata and
    /// 4–64 KB block ops, with a heavy tail of multi-MB object reads —
    /// shorter-bodied but longer-tailed than WebSearch (p50 ≈ 16 KB while
    /// ~5% of flows exceed 4 MB). Mean ≈ 1.0 MB. Used as the storage
    /// tenant's size law in the multi-tenant soak.
    pub fn storage() -> Self {
        SizeDist::new(vec![
            (1.0, 0.0),
            (512.0, 0.05),
            (4_096.0, 0.25),
            (16_384.0, 0.50),
            (65_536.0, 0.70),
            (262_144.0, 0.82),
            (1_048_576.0, 0.90),
            (4_194_304.0, 0.95),
            (16_777_216.0, 0.99),
            (67_108_864.0, 1.0),
        ])
    }

    /// Inverse-CDF sample.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random();
        let ix = self.points.partition_point(|&(_, c)| c < u);
        if ix == 0 {
            return self.points[0].0 as u64;
        }
        let (s0, c0) = self.points[ix - 1];
        let (s1, c1) = self.points[ix.min(self.points.len() - 1)];
        if c1 <= c0 {
            return s1 as u64;
        }
        let f = (u - c0) / (c1 - c0);
        (s0 + f * (s1 - s0)).max(1.0) as u64
    }

    /// Analytic mean of the piecewise-linear distribution.
    pub fn mean(&self) -> f64 {
        let mut m = 0.0;
        for w in self.points.windows(2) {
            let (s0, c0) = w[0];
            let (s1, c1) = w[1];
            m += (c1 - c0) * (s0 + s1) / 2.0;
        }
        m
    }

    /// The paper's three size classes (Fig. 1b): small (0–50 KB), medium
    /// (50 KB–2 MB), large (> 2 MB).
    pub fn size_class(bytes: u64) -> &'static str {
        if bytes <= 50_000 {
            "small"
        } else if bytes <= 2_000_000 {
            "medium"
        } else {
            "large"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn websearch_matches_paper_breakdown() {
        let d = SizeDist::websearch();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let frac = |pred: &dyn Fn(u64) -> bool| {
            samples.iter().filter(|&&s| pred(s)).count() as f64 / n as f64
        };
        // §6.2: 60% below 200 KB, 37% between 200 KB and 10 MB, 3% above.
        assert!((frac(&|s| s < 200_000) - 0.60).abs() < 0.02);
        assert!((frac(&|s| (200_000..10_000_000).contains(&s)) - 0.37).abs() < 0.02);
        assert!((frac(&|s| s >= 10_000_000) - 0.03).abs() < 0.01);
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let d = SizeDist::websearch();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        let want = d.mean();
        assert!((mean - want).abs() / want < 0.03, "sampled {mean:.0} vs analytic {want:.0}");
    }

    #[test]
    fn size_classes() {
        assert_eq!(SizeDist::size_class(10_000), "small");
        assert_eq!(SizeDist::size_class(500_000), "medium");
        assert_eq!(SizeDist::size_class(20_000_000), "large");
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn rejects_non_monotonic_cdf() {
        SizeDist::new(vec![(1.0, 0.0), (0.5, 1.0)]);
    }
}
