//! Flow-trace and result I/O: load flow specs from CSV (so external trace
//! generators can drive the simulator) and export per-flow results.
//!
//! Formats:
//! * flow trace: `src,dst,bytes,start_ns[,incast[,tenant]]` per line, `#`
//!   comments (the two trailing fields default to `0`, so legacy traces
//!   parse unchanged);
//! * results: `src,dst,bytes,start_ns,incast,fct_ns,retx,timeouts,duplicates`.

use crate::arrivals::{FlowSpec, TenantId};
use crate::runner::FlowRecord;

/// Error from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a flow trace from CSV text.
pub fn parse_trace(text: &str) -> Result<Vec<FlowSpec>, TraceError> {
    let mut flows = Vec::new();
    for (ix, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 4 || fields.len() > 6 {
            return Err(TraceError {
                line: ix + 1,
                message: format!("expected 4-6 fields, got {}", fields.len()),
            });
        }
        let parse = |f: &str, what: &str| {
            f.parse::<u64>()
                .map_err(|e| TraceError { line: ix + 1, message: format!("bad {what}: {e}") })
        };
        let src = parse(fields[0], "src")? as usize;
        let dst = parse(fields[1], "dst")? as usize;
        if src == dst {
            return Err(TraceError { line: ix + 1, message: "src == dst".into() });
        }
        let bytes = parse(fields[2], "bytes")?;
        let start = parse(fields[3], "start_ns")?;
        let incast = fields.get(4).is_some_and(|f| *f == "1" || *f == "true");
        let tenant = match fields.get(5) {
            Some(f) => TenantId(parse(f, "tenant")? as u8),
            None => TenantId(0),
        };
        flows.push(FlowSpec { src, dst, bytes, start, incast, tenant });
    }
    Ok(flows)
}

/// Serializes flow specs back to trace CSV.
pub fn trace_to_csv(flows: &[FlowSpec]) -> String {
    let mut s = String::from("# src,dst,bytes,start_ns,incast,tenant\n");
    for f in flows {
        s.push_str(&format!(
            "{},{},{},{},{},{}\n",
            f.src, f.dst, f.bytes, f.start, f.incast as u8, f.tenant.0
        ));
    }
    s
}

/// Serializes per-flow results as CSV (header included).
pub fn to_csv(records: &[FlowRecord]) -> String {
    let mut s = String::from("src,dst,bytes,start_ns,incast,fct_ns,retx,timeouts,duplicates\n");
    for r in records {
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.spec.src,
            r.spec.dst,
            r.spec.bytes,
            r.spec.start,
            r.spec.incast as u8,
            r.fct.map(|f| f.to_string()).unwrap_or_default(),
            r.tx.retx_pkts,
            r.tx.timeouts,
            r.rx.duplicates,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_netsim::stats::TransportStats;

    #[test]
    fn parse_roundtrip() {
        let flows = vec![
            FlowSpec {
                src: 0,
                dst: 3,
                bytes: 4096,
                start: 100,
                incast: false,
                tenant: TenantId(0),
            },
            FlowSpec {
                src: 2,
                dst: 1,
                bytes: 1 << 20,
                start: 5000,
                incast: true,
                tenant: TenantId(2),
            },
        ];
        let csv = trace_to_csv(&flows);
        assert_eq!(parse_trace(&csv).unwrap(), flows);
    }

    #[test]
    fn parse_tolerates_comments_blanks_and_four_fields() {
        let text = "# a comment\n\n0,1,1024,0\n  1, 0, 2048, 50, 1 \n";
        let flows = parse_trace(text).unwrap();
        assert_eq!(flows.len(), 2);
        assert!(!flows[0].incast);
        assert!(flows[1].incast);
        assert_eq!(flows[1].bytes, 2048);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert_eq!(parse_trace("0,1,1024").unwrap_err().line, 1);
        assert!(parse_trace("0,0,1024,0").unwrap_err().message.contains("src == dst"));
        assert!(parse_trace("a,1,1024,0").unwrap_err().message.contains("bad src"));
        assert_eq!(parse_trace("x\n0,1,nope,0").unwrap_err().line, 1);
    }

    #[test]
    fn results_csv_has_header_and_blank_fct_for_unfinished() {
        let rec = FlowRecord {
            spec: FlowSpec {
                src: 0,
                dst: 1,
                bytes: 9,
                start: 7,
                incast: false,
                tenant: TenantId(0),
            },
            fct: None,
            tx: TransportStats { retx_pkts: 3, timeouts: 1, ..Default::default() },
            rx: TransportStats { duplicates: 2, ..Default::default() },
        };
        let csv = to_csv(&[rec]);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("src,dst"));
        assert_eq!(lines.next().unwrap(), "0,1,9,7,0,,3,1,2");
    }
}
