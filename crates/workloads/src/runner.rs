//! The experiment runner: installs per-flow transport endpoints, injects
//! flows at their arrival times, and collects flow completion times.

use crate::arrivals::FlowSpec;
use dcp_core::{dcp_pair, DcpConfig};
use dcp_netsim::endpoint::{CompletionKind, Endpoint};
use dcp_netsim::packet::{FlowId, NodeId};
use dcp_netsim::stats::TransportStats;
use dcp_netsim::time::Nanos;
use dcp_netsim::topology::Topology;
use dcp_netsim::Simulator;
use dcp_rdma::headers::DcpTag;
use dcp_rdma::qp::WorkReqOp;
use dcp_transport::cc::{CongestionControl, Dcqcn, DcqcnConfig, NoCc, StaticWindow};
use dcp_transport::common::{FlowCfg, Placement};
use dcp_transport::ec::{ec_pair, EcConfig};
use dcp_transport::gbn::{gbn_pair, GbnConfig};
use dcp_transport::irn::{irn_pair, IrnConfig};
use dcp_transport::mprdma::{mprdma_pair, MpRdmaConfig};
use dcp_transport::racktlp::{rack_pair, RackConfig};
use dcp_transport::timeout_only::{timeout_only_pair, TimeoutOnlyConfig};
use std::collections::HashMap;

/// Which endpoint protocol a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// RNIC-GBN (the CX5-class baseline).
    Gbn,
    /// IRN (RNIC-SR).
    Irn,
    /// MP-RDMA over PFC.
    MpRdma,
    /// RACK-TLP.
    RackTlp,
    /// Timeout-only (Spectrum-style).
    TimeoutOnly,
    /// DCP.
    Dcp,
    /// Erasure-coded (SDR-RDMA-style k+m generations, SR-NACK fallback).
    Ec,
}

/// Which congestion control senders run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// No CC (DCP-alone in §6.3, GBN at line rate).
    None,
    /// Static BDP window (IRN's default flow control).
    Bdp { gbps: f64, rtt: Nanos },
    /// DCQCN.
    Dcqcn { gbps: f64 },
}

impl CcKind {
    fn build(self) -> Box<dyn CongestionControl> {
        match self {
            CcKind::None => Box::new(NoCc::default()),
            CcKind::Bdp { gbps, rtt } => Box::new(StaticWindow::bdp(gbps, rtt)),
            CcKind::Dcqcn { gbps } => {
                Box::new(Dcqcn::new(DcqcnConfig { line_rate_gbps: gbps, ..Default::default() }))
            }
        }
    }
}

/// Per-run tunables beyond transport/CC choice. The timeout knobs exist
/// because cross-DC runs (Fig. 15) have RTTs that dwarf the intra-DC
/// defaults — any real deployment scales its timers with path RTT.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// RTO for the RTO-based baselines (GBN/IRN/RACK/timeout-only).
    pub rto: Nanos,
    /// DCP-RNIC configuration (coarse fallback timeout et al.).
    pub dcp: DcpConfig,
    /// Erasure-coding configuration (generation geometry, NACK timers).
    pub ec: EcConfig,
    /// Message size flows are chunked into when posted. The default mirrors
    /// [`dcp_core::config::MSG_CHUNK_BYTES`]; fault experiments use smaller
    /// messages because whole-message fallback resends (DCP's coarse
    /// timeout, go-back-N rewinds) price a message's worth of work per
    /// unlucky loss.
    pub chunk: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            rto: 200_000,
            dcp: DcpConfig::default(),
            ec: EcConfig::default(),
            chunk: dcp_core::config::MSG_CHUNK_BYTES,
        }
    }
}

impl RunOpts {
    /// Timeouts scaled for a fabric whose round-trip time is `rtt`.
    pub fn for_rtt(rtt: Nanos) -> Self {
        let mut o = RunOpts::default();
        o.rto = o.rto.max(2 * rtt);
        o.dcp.coarse_timeout = o.dcp.coarse_timeout.max(4 * rtt);
        // EC's receiver NACK must wait long enough for repair shards that
        // are still in flight; its sender RTO is the last resort, priced
        // like the baselines'.
        o.ec.rto = o.ec.rto.max(2 * rtt);
        o.ec.nack_delay = o.ec.nack_delay.max(rtt / 8);
        o
    }
}

/// Builds a connected endpoint pair of the requested kind with defaults.
pub fn endpoint_pair(
    kind: TransportKind,
    cc: CcKind,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
) -> (Box<dyn Endpoint>, Box<dyn Endpoint>) {
    endpoint_pair_opts(kind, cc, flow, src, dst, RunOpts::default())
}

/// Builds a connected endpoint pair with explicit run options.
pub fn endpoint_pair_opts(
    kind: TransportKind,
    cc: CcKind,
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    opts: RunOpts,
) -> (Box<dyn Endpoint>, Box<dyn Endpoint>) {
    let tag = if kind == TransportKind::Dcp { DcpTag::Data } else { DcpTag::NonDcp };
    let cfg = FlowCfg::sender(flow, src, dst, tag);
    match kind {
        TransportKind::Gbn => {
            let gcfg = GbnConfig { rto: opts.rto, ..Default::default() };
            let (t, r) = gbn_pair(cfg, gcfg, cc.build(), Placement::Virtual);
            (Box::new(t), Box::new(r))
        }
        TransportKind::Irn => {
            let icfg = IrnConfig { rto: opts.rto, ..Default::default() };
            let (t, r) = irn_pair(cfg, icfg, cc.build(), Placement::Virtual);
            (Box::new(t), Box::new(r))
        }
        TransportKind::MpRdma => {
            let mcfg = MpRdmaConfig { rto: opts.rto, ..Default::default() };
            let (t, r) = mprdma_pair(cfg, mcfg, Placement::Virtual);
            (Box::new(t), Box::new(r))
        }
        TransportKind::RackTlp => {
            let rcfg =
                RackConfig { rto: opts.rto.max(RackConfig::default().rto), ..Default::default() };
            let (t, r) = rack_pair(cfg, rcfg, cc.build(), Placement::Virtual);
            (Box::new(t), Box::new(r))
        }
        TransportKind::TimeoutOnly => {
            let tcfg = TimeoutOnlyConfig { rto: opts.rto, ..Default::default() };
            let (t, r) = timeout_only_pair(cfg, tcfg, cc.build(), Placement::Virtual);
            (Box::new(t), Box::new(r))
        }
        TransportKind::Dcp => {
            let (t, r) = dcp_pair(cfg, opts.dcp, cc.build(), Placement::Virtual);
            (Box::new(t), Box::new(r))
        }
        TransportKind::Ec => {
            let mut ecfg = opts.ec;
            ecfg.rto = ecfg.rto.max(opts.rto);
            let (t, r) = ec_pair(cfg, ecfg, cc.build(), Placement::Virtual);
            (Box::new(t), Box::new(r))
        }
    }
}

/// Outcome of one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowRecord {
    pub spec: FlowSpec,
    /// Completion time (receiver side), or `None` if the deadline passed.
    pub fct: Option<Nanos>,
    pub tx: TransportStats,
    pub rx: TransportStats,
}

/// Posts `bytes` as a sequence of ≤ 1 MB Write messages — the way verbs
/// applications actually issue large transfers (and what keeps DCP's
/// eMSN-based ACK stream flowing during a long flow). Returns the number of
/// messages posted.
fn post_chunked(sim: &mut Simulator, host: NodeId, flow: FlowId, bytes: u64, chunk: u64) -> u64 {
    let bytes = bytes.max(1);
    let n = bytes.div_ceil(chunk);
    let mut remaining = bytes;
    for i in 0..n {
        let len = remaining.min(chunk);
        remaining -= len;
        sim.post(
            host,
            flow,
            i,
            WorkReqOp::Write { remote_addr: 0x100_0000 + i * chunk, rkey: 1 },
            len,
        );
    }
    n
}

/// Runs `flows` (sorted or not) over the fabric; returns one record each.
///
/// Every flow is one QP carrying its bytes as a chain of ≤ 1 MB Write
/// messages; the flow completes when its last message is delivered.
pub fn run_flows(
    sim: &mut Simulator,
    topo: &Topology,
    kind: TransportKind,
    cc: CcKind,
    flows: &[FlowSpec],
    deadline: Nanos,
) -> Vec<FlowRecord> {
    run_flows_opts(sim, topo, kind, cc, flows, deadline, RunOpts::default())
}

/// [`run_flows`] with explicit [`RunOpts`].
#[allow(clippy::too_many_arguments)]
pub fn run_flows_opts(
    sim: &mut Simulator,
    topo: &Topology,
    kind: TransportKind,
    cc: CcKind,
    flows: &[FlowSpec],
    deadline: Nanos,
    opts: RunOpts,
) -> Vec<FlowRecord> {
    run_flows_hooked(sim, topo, kind, cc, flows, deadline, opts, None)
        .expect("hookless run cannot fail")
}

/// A mid-run window barrier callback: read-only invariant checks (lenient
/// conservation, delivery-oracle scan, liveness verdict) run here while
/// traffic is still flowing. Returning `Err` aborts the run with the
/// violation; the completed-so-far records are discarded by the caller,
/// which typically shrinks the scenario to a repro instead.
pub type WindowHook<'a> = &'a mut dyn FnMut(&mut Simulator) -> Result<(), String>;

/// [`run_flows_opts`] with an optional `(window, hook)` barrier: the hook
/// fires every `window` simulated nanoseconds between event batches.
///
/// Barriers only *bound* how far the engine advances between injections —
/// they never reorder events (the calendar pops the same `(time, seq)`
/// total order regardless of where the driving loop pauses), so a run with
/// a read-only hook is byte-identical to the same run without one. The
/// `soak_midrun` integration test pins exactly that digest equality.
#[allow(clippy::too_many_arguments)]
pub fn run_flows_hooked(
    sim: &mut Simulator,
    topo: &Topology,
    kind: TransportKind,
    cc: CcKind,
    flows: &[FlowSpec],
    deadline: Nanos,
    opts: RunOpts,
    mut hook: Option<(Nanos, WindowHook)>,
) -> Result<Vec<FlowRecord>, String> {
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by_key(|&i| flows[i].start);
    let mut fct: HashMap<u32, Nanos> = HashMap::new();
    let mut msgs_left: HashMap<u32, u64> = HashMap::new();
    let mut remaining = flows.len();
    let mut next = 0usize;
    let window = hook.as_ref().map_or(Nanos::MAX, |(w, _)| (*w).max(1));
    let mut next_barrier = if hook.is_some() { window } else { Nanos::MAX };
    while remaining > 0 {
        // Inject everything due now.
        while next < order.len() && flows[order[next]].start <= sim.now() {
            let ix = order[next];
            let f = flows[ix];
            let flow_id = FlowId(ix as u32 + 1);
            let (src, dst) = (topo.hosts[f.src], topo.hosts[f.dst]);
            let (tx, rx) = endpoint_pair_opts(kind, cc, flow_id, src, dst, opts);
            sim.install_endpoint(src, flow_id, tx);
            sim.install_endpoint(dst, flow_id, rx);
            if f.tenant.0 != 0 {
                // Both ends carry the tag: data leaves the source under the
                // tenant's egress weight, ACK-class traffic the sink's.
                sim.host_mut(src).set_flow_tenant(flow_id, f.tenant.0);
                sim.host_mut(dst).set_flow_tenant(flow_id, f.tenant.0);
            }
            let n = post_chunked(sim, src, flow_id, f.bytes, opts.chunk);
            msgs_left.insert(ix as u32, n);
            next += 1;
        }
        if sim.now() >= deadline {
            break;
        }
        // Advance: to the next arrival or window barrier if the queue
        // outruns them, else batch to the next completion boundary (whole
        // lookahead windows when the engine is sharded).
        if next < order.len() {
            let next_start = flows[order[next]].start.min(next_barrier);
            if sim.advance_bounded(next_start).is_none() {
                // Queue empty or next event beyond the bound: jump.
                sim.run_until(next_start.min(deadline));
                fire_barrier(sim, &mut hook, &mut next_barrier, window)?;
                continue;
            }
        } else if next_barrier < Nanos::MAX {
            if sim.advance_bounded(next_barrier).is_none() {
                if sim.pending_events() == 0 {
                    break;
                }
                // Next event past the barrier: jump to it and check.
                sim.run_until(next_barrier.min(deadline));
            }
        } else if sim.advance().is_none() {
            break;
        }
        fire_barrier(sim, &mut hook, &mut next_barrier, window)?;
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                let ix = c.flow.0 - 1;
                let left = msgs_left.get_mut(&ix).expect("completion for known flow");
                *left -= 1;
                if *left == 0 {
                    fct.insert(ix, c.at - flows[ix as usize].start);
                    remaining -= 1;
                }
            }
        });
    }
    // Flow-conservation sanity check (lenient: packets may still be in
    // flight, but the fabric can never account for more packets than were
    // sent). Runs in every figure/table binary via debug assertions; the
    // strict equality check lives in the quiesced integration tests.
    #[cfg(debug_assertions)]
    {
        let c = sim.check_conservation(false);
        debug_assert!(c.is_ok(), "flow conservation violated: {:?}", c.violations);
    }
    Ok(flows
        .iter()
        .enumerate()
        .map(|(ix, &spec)| {
            let flow_id = FlowId(ix as u32 + 1);
            let started = spec.start <= sim.now();
            FlowRecord {
                spec,
                fct: fct.get(&(ix as u32)).copied(),
                tx: if started {
                    sim.endpoint_stats(topo.hosts[spec.src], flow_id)
                } else {
                    TransportStats::default()
                },
                rx: if started {
                    sim.endpoint_stats(topo.hosts[spec.dst], flow_id)
                } else {
                    TransportStats::default()
                },
            }
        })
        .collect())
}

/// Fires the window hook if the clock has crossed the barrier, then
/// re-arms the barrier at the next window boundary past `now`.
fn fire_barrier(
    sim: &mut Simulator,
    hook: &mut Option<(Nanos, WindowHook)>,
    next_barrier: &mut Nanos,
    window: Nanos,
) -> Result<(), String> {
    if let Some((_, h)) = hook {
        if sim.now() >= *next_barrier {
            h(sim)?;
            *next_barrier = (sim.now() / window + 1) * window;
        }
    }
    Ok(())
}
