//! Multi-tenant traffic mixes: several tenants with different size laws
//! and arrival processes sharing one fabric, each flow tagged with its
//! [`TenantId`].
//!
//! The soak harness composes three tenant archetypes the production
//! literature keeps re-measuring against each other:
//!
//! * **websearch** — Poisson arrivals over the DCTCP WebSearch CDF
//!   (latency-sensitive request/response traffic);
//! * **storage** — Poisson arrivals over [`SizeDist::storage`] (small block
//!   ops with a heavy object-read tail), optionally with periodic N-to-1
//!   incast surges (the backup/recovery pattern that starves neighbours on
//!   unisolated fabrics);
//! * **allreduce** — ring-AllReduce iterations: each of `2(G−1)` steps
//!   moves `bytes/G` between ring neighbours. Steps are *paced* at the
//!   ideal step time rather than receive-gated — an open-loop stand-in for
//!   [`crate::collectives::run_collective`] so every tenant's flows share
//!   one [`FlowSpec`] namespace and one driver. Pacing makes the tenant's
//!   sensitivity visible as FCT slowdown per step instead of iteration
//!   skew, which is exactly what the per-tenant SLO tracks.
//!
//! The generator is a pure function of its RNG, so a soak run stays a pure
//! function of `(workload seed, fault plan, adversary seed)`.

use crate::arrivals::{incast_flows, poisson_flows_until, tag_tenant, FlowSpec, TenantId};
use crate::websearch::SizeDist;
use dcp_netsim::time::Nanos;
use rand::rngs::StdRng;
use rand::Rng;

/// How one tenant offers load.
#[derive(Debug, Clone)]
pub enum TenantKind {
    /// Poisson arrivals over `dist` at `load` of aggregate host bandwidth.
    Poisson { dist: SizeDist, load: f64 },
    /// Ring AllReduce over `group` hosts: `bytes` reduced per iteration,
    /// one iteration starting every `period` ns.
    AllReduce { group: Vec<usize>, bytes: u64, period: Nanos },
}

/// One tenant of the mix: identity, egress weight and SLO budget.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub id: TenantId,
    pub name: &'static str,
    /// Host-egress WRR weight (relative to the other tenants).
    pub weight: u64,
    /// p99.9 slowdown budget the soak asserts against.
    pub slo_p999: f64,
    pub kind: TenantKind,
}

/// Ring-AllReduce step flows for `iterations` iterations starting at
/// `start`, one iteration per `period`. Each iteration runs `2(G−1)` steps
/// (reduce-scatter then all-gather) of `bytes/G` per ring edge, paced
/// evenly across the period — `G` flows per step, every host sending to
/// its ring successor.
pub fn ring_allreduce_flows(
    group: &[usize],
    bytes: u64,
    period: Nanos,
    start: Nanos,
    iterations: usize,
) -> Vec<FlowSpec> {
    let g = group.len();
    assert!(g >= 2, "ring needs at least two hosts");
    let steps = 2 * (g - 1);
    let chunk = (bytes / g as u64).max(1);
    let step_gap = (period / steps as Nanos).max(1);
    let mut flows = Vec::with_capacity(iterations * steps * g);
    for it in 0..iterations {
        let iter_start = start + it as Nanos * period;
        for s in 0..steps {
            let at = iter_start + s as Nanos * step_gap;
            for (i, &src) in group.iter().enumerate() {
                let dst = group[(i + 1) % g];
                flows.push(FlowSpec {
                    src,
                    dst,
                    bytes: chunk,
                    start: at,
                    incast: false,
                    tenant: TenantId(0),
                });
            }
        }
    }
    flows
}

/// Generates one tenant's flows over `[0, horizon)`, tagged with its id.
pub fn tenant_flows(
    rng: &mut StdRng,
    spec: &TenantSpec,
    n_hosts: usize,
    host_gbps: f64,
    horizon: Nanos,
) -> Vec<FlowSpec> {
    let flows = match &spec.kind {
        TenantKind::Poisson { dist, load } => {
            poisson_flows_until(rng, dist, n_hosts, host_gbps, *load, horizon)
        }
        TenantKind::AllReduce { group, bytes, period } => {
            let iterations = (horizon / *period).max(1) as usize;
            // Stagger the first iteration by a random sub-period offset so
            // collective steps don't phase-lock with other tenants' bursts.
            let start = rng.random_range(0..(*period).max(2) / 2);
            ring_allreduce_flows(group, *bytes, *period, start, iterations)
        }
    };
    tag_tenant(flows, spec.id)
}

/// Generates the whole mix merged into arrival order. Each tenant draws
/// from the shared RNG in declaration order, so the mix is deterministic
/// in `(seed, specs)`.
pub fn tenant_mix(
    rng: &mut StdRng,
    specs: &[TenantSpec],
    n_hosts: usize,
    host_gbps: f64,
    horizon: Nanos,
) -> Vec<FlowSpec> {
    let mut all = Vec::new();
    for spec in specs {
        all.extend(tenant_flows(rng, spec, n_hosts, host_gbps, horizon));
    }
    all.sort_by_key(|f| f.start);
    all
}

/// An N-to-1 incast surge by `tenant` (backup/recovery traffic): `fan_in`
/// senders each blast `bytes` at one victim, bursts repeating across
/// `[0, duration)` at `load` of one host's bandwidth. Stacked on top of a
/// tenant's base load to test that egress WRR keeps the *other* tenants'
/// SLOs intact.
#[allow(clippy::too_many_arguments)]
pub fn tenant_incast_surge(
    rng: &mut StdRng,
    tenant: TenantId,
    n_hosts: usize,
    host_gbps: f64,
    load: f64,
    fan_in: usize,
    bytes: u64,
    duration: Nanos,
) -> Vec<FlowSpec> {
    tag_tenant(incast_flows(rng, n_hosts, host_gbps, load, fan_in, bytes, duration), tenant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                id: TenantId(0),
                name: "websearch",
                weight: 4,
                slo_p999: 50.0,
                kind: TenantKind::Poisson { dist: SizeDist::websearch(), load: 0.2 },
            },
            TenantSpec {
                id: TenantId(1),
                name: "storage",
                weight: 2,
                slo_p999: 80.0,
                kind: TenantKind::Poisson { dist: SizeDist::storage(), load: 0.1 },
            },
            TenantSpec {
                id: TenantId(2),
                name: "allreduce",
                weight: 2,
                slo_p999: 40.0,
                kind: TenantKind::AllReduce {
                    group: vec![0, 2, 4, 6],
                    bytes: 1 << 20,
                    period: 2_000_000,
                },
            },
        ]
    }

    #[test]
    fn ring_steps_cover_every_edge_per_step() {
        let flows = ring_allreduce_flows(&[1, 3, 5, 7], 4096, 600, 0, 2);
        // 2 iterations × 2(G−1)=6 steps × G=4 edges.
        assert_eq!(flows.len(), 2 * 6 * 4);
        for step in flows.chunks(4) {
            let starts: Vec<_> = step.iter().map(|f| f.start).collect();
            assert!(starts.windows(2).all(|w| w[0] == w[1]), "steps are synchronous");
            // Each host sends exactly once per step, to its ring successor.
            let mut srcs: Vec<_> = step.iter().map(|f| f.src).collect();
            srcs.sort_unstable();
            assert_eq!(srcs, vec![1, 3, 5, 7]);
            assert!(step.iter().all(|f| f.src != f.dst));
        }
    }

    #[test]
    fn mix_tags_and_sorts() {
        let mut rng = StdRng::seed_from_u64(11);
        let flows = tenant_mix(&mut rng, &specs(), 16, 100.0, 5_000_000);
        assert!(!flows.is_empty());
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        for t in 0..3u8 {
            assert!(
                flows.iter().any(|f| f.tenant == TenantId(t)),
                "tenant {t} missing from the mix"
            );
        }
        // Same seed, same mix — determinism under repeated generation.
        let mut rng2 = StdRng::seed_from_u64(11);
        assert_eq!(flows, tenant_mix(&mut rng2, &specs(), 16, 100.0, 5_000_000));
    }

    #[test]
    fn surge_is_tagged_and_incast() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = tenant_incast_surge(&mut rng, TenantId(1), 16, 100.0, 0.1, 8, 64 << 10, 1_000_000);
        assert!(!s.is_empty());
        assert!(s.iter().all(|f| f.incast && f.tenant == TenantId(1)));
    }
}
