//! Runner end-to-end: real workloads over a small CLOS for every
//! transport, plus collectives, deterministic and complete.

use dcp_core::dcp_switch_config;
use dcp_netsim::switch::SwitchConfig;
use dcp_netsim::time::{MS, SEC, US};
use dcp_netsim::{topology, LoadBalance, Simulator};
use dcp_workloads::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_clos(seed: u64, cfg: SwitchConfig) -> (Simulator, dcp_netsim::Topology) {
    let mut sim = Simulator::new(seed);
    let topo = topology::clos(&mut sim, cfg, 2, 4, 4, 100.0, 100.0, US, US);
    (sim, topo)
}

fn websearch_flows(seed: u64, n: usize, hosts: usize) -> Vec<FlowSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    poisson_flows(&mut rng, &SizeDist::websearch(), hosts, 100.0, 0.3, n)
}

#[test]
fn all_transports_complete_websearch() {
    let cases = [
        (
            TransportKind::Gbn,
            CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
            SwitchConfig::lossy(LoadBalance::Ecmp),
        ),
        (
            TransportKind::Irn,
            CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
            SwitchConfig::lossy(LoadBalance::AdaptiveRouting),
        ),
        (TransportKind::MpRdma, CcKind::None, SwitchConfig::lossless(LoadBalance::Ecmp)),
        (
            TransportKind::RackTlp,
            CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
            SwitchConfig::lossy(LoadBalance::Ecmp),
        ),
        (
            TransportKind::TimeoutOnly,
            CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
            SwitchConfig::lossy(LoadBalance::Ecmp),
        ),
        (TransportKind::Dcp, CcKind::None, dcp_switch_config(LoadBalance::AdaptiveRouting, 16)),
        (
            TransportKind::Ec,
            CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
            SwitchConfig::lossy(LoadBalance::AdaptiveRouting),
        ),
    ];
    for (kind, cc, cfg) in cases {
        let (mut sim, topo) = small_clos(1, cfg);
        let flows = websearch_flows(2, 120, topo.hosts.len());
        let records = run_flows(&mut sim, &topo, kind, cc, &flows, 10 * SEC);
        assert_eq!(unfinished(&records), 0, "{kind:?}: all flows must finish");
        let ideal = IdealFct::intra_dc_100g();
        let p50 = overall_slowdown(&records, &ideal, 50.0);
        assert!((1.0..100.0).contains(&p50), "{kind:?}: sane p50 slowdown {p50}");
    }
}

#[test]
fn dcp_zero_timeouts_and_zero_spurious_on_websearch_ar() {
    // The Fig. 1 / Fig. 2 claims at workload scale: DCP with AR, no losses
    // beyond trims, zero timeouts, retx == HO notifications.
    let (mut sim, topo) = small_clos(3, dcp_switch_config(LoadBalance::AdaptiveRouting, 16));
    let flows = websearch_flows(4, 200, topo.hosts.len());
    let records = run_flows(&mut sim, &topo, TransportKind::Dcp, CcKind::None, &flows, 10 * SEC);
    assert_eq!(unfinished(&records), 0);
    let timeouts: u64 = records.iter().map(|r| r.tx.timeouts).sum();
    assert_eq!(timeouts, 0, "DCP must not RTO");
    let dup: u64 = records.iter().map(|r| r.rx.duplicates).sum();
    assert_eq!(dup, 0, "exactly-once delivery across the workload");
}

#[test]
fn irn_with_ar_spuriously_retransmits_dcp_does_not() {
    // Fig. 1's head-to-head at small scale, under packet spraying (the
    // harshest packet-level LB).
    let run = |kind: TransportKind, cfg: SwitchConfig| {
        let (mut sim, topo) = small_clos(5, cfg);
        let flows = websearch_flows(6, 150, topo.hosts.len());
        let records = run_flows(
            &mut sim,
            &topo,
            kind,
            CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
            &flows,
            10 * SEC,
        );
        assert_eq!(unfinished(&records), 0, "{kind:?}");
        let retx: u64 = records.iter().map(|r| r.tx.retx_pkts).sum();
        let dups: u64 = records.iter().map(|r| r.rx.duplicates).sum();
        let losses = sim.net_stats().data_drops + sim.net_stats().trims;
        (retx, dups, losses)
    };
    let (irn_retx, irn_dups, irn_losses) =
        run(TransportKind::Irn, SwitchConfig::lossy(LoadBalance::Spray));
    let (dcp_retx, dcp_dups, dcp_losses) =
        run(TransportKind::Dcp, dcp_switch_config(LoadBalance::Spray, 16));
    // IRN misreads spray reordering as loss: retransmissions far exceed the
    // actual losses, and the spurious copies surface as duplicates.
    assert!(irn_retx > 2 * irn_losses, "IRN spurious retx: {irn_retx} vs {irn_losses} losses");
    assert!(irn_dups > 0, "spurious retransmissions arrive as duplicates");
    // DCP retransmits at most once per trim (HO notification) and never
    // delivers a duplicate.
    assert!(dcp_retx <= dcp_losses, "DCP retx {dcp_retx} bounded by trims {dcp_losses}");
    assert_eq!(dcp_dups, 0, "DCP delivers exactly once");
}

#[test]
fn ring_allreduce_completes_with_correct_message_count() {
    let (mut sim, topo) = small_clos(7, dcp_switch_config(LoadBalance::AdaptiveRouting, 16));
    let groups = vec![
        Group { members: vec![0, 1, 2, 3], total_bytes: 4 << 20 },
        Group { members: vec![4, 5, 6, 7], total_bytes: 4 << 20 },
    ];
    let res = run_collective(
        &mut sim,
        &topo,
        TransportKind::Dcp,
        CcKind::None,
        &groups,
        Collective::RingAllReduce,
        10 * SEC,
    );
    // 2(n-1) steps × n members = 24 messages per group of 4.
    for r in &res {
        assert_eq!(r.fcts.len(), 24);
        assert!(r.jct > 0);
    }
}

#[test]
fn alltoall_completes() {
    let (mut sim, topo) = small_clos(9, dcp_switch_config(LoadBalance::AdaptiveRouting, 16));
    let groups = vec![Group { members: (0..8).collect(), total_bytes: 8 << 20 }];
    let res = run_collective(
        &mut sim,
        &topo,
        TransportKind::Dcp,
        CcKind::None,
        &groups,
        Collective::AllToAll,
        10 * SEC,
    );
    assert_eq!(res[0].fcts.len(), 8 * 7);
    assert!(res[0].jct < 100 * MS);
}

#[test]
fn collective_dcp_beats_gbn_on_lossy_fabric() {
    // Under forced loss, GBN's JCT inflates far more than DCP's.
    let jct = |kind: TransportKind, mut cfg: SwitchConfig| {
        cfg.forced_loss_rate = 0.01;
        let (mut sim, topo) = small_clos(11, cfg);
        let groups = vec![Group { members: vec![0, 4, 8, 12], total_bytes: 8 << 20 }];
        let res = run_collective(
            &mut sim,
            &topo,
            kind,
            CcKind::None,
            &groups,
            Collective::RingAllReduce,
            60 * SEC,
        );
        res[0].jct
    };
    let dcp = jct(TransportKind::Dcp, dcp_switch_config(LoadBalance::AdaptiveRouting, 16));
    let gbn = jct(TransportKind::Gbn, SwitchConfig::lossy(LoadBalance::Ecmp));
    assert!(dcp < gbn, "DCP JCT {dcp} must beat GBN {gbn} at 1% loss");
}

#[test]
fn runner_is_deterministic() {
    let run = || {
        let (mut sim, topo) = small_clos(13, dcp_switch_config(LoadBalance::Spray, 16));
        let flows = websearch_flows(14, 100, topo.hosts.len());
        let records =
            run_flows(&mut sim, &topo, TransportKind::Dcp, CcKind::None, &flows, 10 * SEC);
        records.iter().map(|r| r.fct).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
