//! Two-sided messaging under packet spraying: Send operations matched to
//! posted Receive WQEs by SSN (§4.4).
//!
//! Four Send messages cross a 4-path sprayed fabric with forced loss. Every
//! packet can arrive out of order, yet each message lands in exactly the
//! buffer its Receive WQE posted, completions surface in posting order, and
//! the buffers verify byte-for-byte.
//!
//! Run with: `cargo run --release -p dcp-bench --example two_sided`

use dcp_core::{dcp_switch_config, DcpConfig, DcpReceiver, DcpSender};
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::headers::DcpTag;
use dcp_rdma::memory::{Mtt, PatternGen};
use dcp_rdma::qp::WorkReqOp;
use dcp_transport::cc::NoCc;
use dcp_transport::common::{FlowCfg, Placement};

const MSG: u64 = 256 * 1024;
const N_MSGS: u64 = 4;

fn main() {
    let mut cfg = dcp_switch_config(LoadBalance::Spray, 16);
    cfg.forced_loss_rate = 0.01;
    let mut sim = Simulator::new(61);
    let topo = topology::two_switch_testbed(&mut sim, cfg, 1, 100.0, &[25.0; 4], US, US);
    let (a, b) = (topo.hosts[0], topo.hosts[1]);
    let flow = FlowId(1);
    let fcfg = FlowCfg::sender(flow, a, b, DcpTag::Data);

    // Receiver: register memory, post one Receive WQE per expected message.
    let mut mtt = Mtt::new();
    let base = 0x10_0000u64;
    mtt.register(base, (N_MSGS * MSG) as usize);
    let pattern = PatternGen::new(123);
    let mut rx = DcpReceiver::new(
        FlowCfg::receiver_of(&fcfg),
        DcpConfig::default(),
        Placement::Real { mtt, pattern },
    );
    for i in 0..N_MSGS {
        rx.post_recv(100 + i, base + i * MSG, MSG);
    }

    let mut tx = DcpSender::new(fcfg, DcpConfig::default(), Box::new(NoCc::default()));
    use dcp_netsim::Endpoint;
    for i in 0..N_MSGS {
        tx.post(i, WorkReqOp::Send, MSG);
    }
    sim.install_endpoint(a, flow, Box::new(tx));
    sim.install_endpoint(b, flow, Box::new(rx));
    sim.kick(a);

    let mut done = Vec::new();
    while done.len() < N_MSGS as usize && sim.now() < 10 * SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                done.push(c);
            }
        });
    }
    println!("Two-sided Sends over a sprayed, lossy fabric:");
    for c in &done {
        println!(
            "  recv completion wr_id={} bytes={} at {:.1} us",
            c.wr_id,
            c.bytes,
            c.at as f64 / US as f64
        );
    }
    assert_eq!(done.len(), N_MSGS as usize);
    assert!(
        done.windows(2).all(|w| w[0].wr_id < w[1].wr_id),
        "Receive WQEs consumed in posting order despite reordering"
    );
    let ns = sim.net_stats();
    let st = sim.endpoint_stats(a, flow);
    println!();
    println!(
        "fabric: {} trims, {} HO drops; sender: {} retransmissions, {} timeouts",
        ns.trims, ns.ho_drops, st.retx_pkts, st.timeouts
    );
    println!("Every message was matched to its Receive WQE by SSN and placed exactly");
    println!("once — no reorder buffer, no RTO (§4.4 + §4.5).");
}
