//! AI collective workload: ring AllReduce and AllToAll on a CLOS fabric
//! (the §6.1/§6.2 AI benchmarks at example scale).
//!
//! Four groups of four hosts each run the collective simultaneously; we
//! compare DCP with adaptive routing against IRN (AR) and PFC+GBN (ECMP).
//!
//! Run with: `cargo run --release -p dcp-bench --example ai_collective`

use dcp_core::dcp_switch_config;
use dcp_netsim::switch::SwitchConfig;
use dcp_netsim::time::{MS, SEC, US};
use dcp_netsim::{topology, LoadBalance, Simulator};
use dcp_workloads::{run_collective, CcKind, Collective, Group, TransportKind};

fn groups() -> Vec<Group> {
    (0..4)
        .map(|g| Group { members: (g * 4..(g + 1) * 4).collect(), total_bytes: 32 << 20 })
        .collect()
}

fn run(label: &str, kind: TransportKind, cc: CcKind, cfg: SwitchConfig, which: Collective) -> f64 {
    let mut sim = Simulator::new(11);
    let topo = topology::clos(&mut sim, cfg, 4, 4, 4, 100.0, 100.0, US, US);
    let res = run_collective(&mut sim, &topo, kind, cc, &groups(), which, 60 * SEC);
    let worst = res.iter().map(|r| r.jct).max().unwrap() as f64 / MS as f64;
    println!("  {:<24} max JCT = {:>8.3} ms", label, worst);
    worst
}

fn main() {
    let bdp = CcKind::Bdp { gbps: 100.0, rtt: 12 * US };
    for which in [Collective::RingAllReduce, Collective::AllToAll] {
        println!("{which:?}: 4 groups x 4 hosts, 32 MB per group");
        run(
            "DCP (adaptive routing)",
            TransportKind::Dcp,
            CcKind::None,
            dcp_switch_config(LoadBalance::AdaptiveRouting, 16),
            which,
        );
        run(
            "IRN (adaptive routing)",
            TransportKind::Irn,
            bdp,
            SwitchConfig::lossy(LoadBalance::AdaptiveRouting),
            which,
        );
        run(
            "PFC + GBN (ECMP)",
            TransportKind::Gbn,
            bdp,
            SwitchConfig::lossless(LoadBalance::Ecmp),
            which,
        );
        println!();
    }
    println!("Expected shape (paper Figs. 12/14): DCP achieves the lowest JCT; synchronized");
    println!("collectives amplify any flow-level tail, so IRN's spurious retransmissions and");
    println!("PFC's head-of-line blocking both inflate the slowest group.");
}
