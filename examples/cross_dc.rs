//! Long-haul communication (§6.1's 10 km experiment, Fig. 15's premise):
//! DCP needs no PFC headroom, so a long lossy link sustains throughput with
//! ordinary switch buffers, while a PFC fabric must reserve a full
//! RTT × bandwidth of headroom per queue (Table 1's distance wall).
//!
//! Run with: `cargo run --release -p dcp-bench --example cross_dc`

use dcp_analytic::ASICS;
use dcp_core::dcp_switch_config;
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{fiber_delay_km, SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

fn long_haul_goodput(km: f64) -> f64 {
    let mut sim = Simulator::new(3);
    let cfg = dcp_switch_config(LoadBalance::Ecmp, 16);
    let topo =
        topology::two_switch_testbed(&mut sim, cfg, 1, 100.0, &[100.0], US, fiber_delay_km(km));
    let (a, b) = (topo.hosts[0], topo.hosts[1]);
    let flow = FlowId(1);
    let (tx, rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, a, b);
    sim.install_endpoint(a, flow, tx);
    sim.install_endpoint(b, flow, rx);
    // 64 MB as 1 MB messages, streaming.
    let total = 64u64 << 20;
    for i in 0..64 {
        sim.post(a, flow, i, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, 1 << 20);
    }
    let mut done = 0;
    let mut last = 0;
    while done < 64 && sim.now() < 10 * SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                done += 1;
                last = c.at;
            }
        });
    }
    assert_eq!(done, 64);
    total as f64 * 8.0 / last as f64
}

fn main() {
    println!("Long-haul DCP throughput over a single lossy cross-switch link:");
    for km in [1.0, 10.0, 100.0] {
        println!("  {:>5} km: {:>6.1} Gbps", km, long_haul_goodput(km));
    }
    println!();
    println!("For contrast, the maximum *lossless* (PFC) distance of commodity ASICs");
    println!("(Table 1, single lossless queue):");
    for a in ASICS {
        println!("  {:<12} {:>6.2} km", a.name, a.max_lossless_km(1));
    }
    println!();
    println!("Expected shape (paper §6.1): DCP sustains high goodput at 10 km and beyond");
    println!("with 32 MB of buffer, while PFC cannot even guarantee losslessness past a");
    println!("few km without DRAM-backed buffers.");
}
