//! Quickstart: the `perftest`-style benchmark of Fig. 8 on two
//! directly-cabled 100 G hosts.
//!
//! Measures DCP's streaming throughput (a long run of 512 KB messages) and
//! small-message latency (a 64 B message), then does the same for the GBN
//! baseline and the software-TCP model.
//!
//! Run with: `cargo run --release -p dcp-bench --example quickstart`

use dcp_core::{dcp_pair, DcpConfig};
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{Nanos, SEC, US};
use dcp_netsim::{topology, CompletionKind, Endpoint, Simulator};
use dcp_rdma::headers::DcpTag;
use dcp_rdma::qp::WorkReqOp;
use dcp_transport::cc::NoCc;
use dcp_transport::common::{FlowCfg, Placement};
use dcp_transport::gbn::{gbn_pair, GbnConfig};
use dcp_transport::swtcp::{swtcp_pair, SwTcpConfig};

/// Streams `count` messages of `msg` bytes; returns goodput in Gbps.
fn throughput(
    make: impl Fn(FlowCfg) -> (Box<dyn Endpoint>, Box<dyn Endpoint>),
    tag: DcpTag,
) -> f64 {
    let mut sim = Simulator::new(1);
    let topo = topology::back_to_back(&mut sim, 100.0, 500);
    let (a, b) = (topo.hosts[0], topo.hosts[1]);
    let flow = FlowId(1);
    let (tx, rx) = make(FlowCfg::sender(flow, a, b, tag));
    sim.install_endpoint(a, flow, tx);
    sim.install_endpoint(b, flow, rx);
    let (msg, count) = (512 * 1024u64, 64u64);
    for i in 0..count {
        sim.post(a, flow, i, WorkReqOp::Write { remote_addr: 0x10_0000 + i * msg, rkey: 1 }, msg);
    }
    let mut last = 0;
    let mut done = 0;
    while done < count && sim.now() < SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                done += 1;
                last = c.at;
            }
        });
    }
    assert_eq!(done, count, "stream did not finish");
    (msg * count) as f64 * 8.0 / last as f64
}

/// One 64 B message; returns delivery latency in µs.
fn latency(make: impl Fn(FlowCfg) -> (Box<dyn Endpoint>, Box<dyn Endpoint>), tag: DcpTag) -> f64 {
    let mut sim = Simulator::new(2);
    let topo = topology::back_to_back(&mut sim, 100.0, 500);
    let (a, b) = (topo.hosts[0], topo.hosts[1]);
    let flow = FlowId(1);
    let (tx, rx) = make(FlowCfg::sender(flow, a, b, tag));
    sim.install_endpoint(a, flow, tx);
    sim.install_endpoint(b, flow, rx);
    sim.post(a, flow, 0, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, 64);
    let mut at: Nanos = 0;
    while at == 0 && sim.now() < SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                at = c.at;
            }
        });
    }
    assert!(at > 0, "message never arrived");
    at as f64 / US as f64
}

fn main() {
    println!("Fig. 8 — perftest on back-to-back 100G hosts");
    println!("{:<10} {:>18} {:>14}", "scheme", "throughput (Gbps)", "latency (us)");
    let dcp = |cfg: FlowCfg| {
        let (t, r) =
            dcp_pair(cfg, DcpConfig::default(), Box::new(NoCc::default()), Placement::Virtual);
        (Box::new(t) as Box<dyn Endpoint>, Box::new(r) as Box<dyn Endpoint>)
    };
    let gbn = |cfg: FlowCfg| {
        let (t, r) =
            gbn_pair(cfg, GbnConfig::default(), Box::new(NoCc::default()), Placement::Virtual);
        (Box::new(t) as Box<dyn Endpoint>, Box::new(r) as Box<dyn Endpoint>)
    };
    let tcp = |cfg: FlowCfg| {
        let (t, r) =
            swtcp_pair(cfg, SwTcpConfig::default(), Box::new(NoCc::default()), Placement::Virtual);
        (Box::new(t) as Box<dyn Endpoint>, Box::new(r) as Box<dyn Endpoint>)
    };
    println!(
        "{:<10} {:>18.1} {:>14.2}",
        "DCP-RNIC",
        throughput(dcp, DcpTag::Data),
        latency(dcp, DcpTag::Data)
    );
    println!(
        "{:<10} {:>18.1} {:>14.2}",
        "RNIC-GBN",
        throughput(gbn, DcpTag::NonDcp),
        latency(gbn, DcpTag::NonDcp)
    );
    println!(
        "{:<10} {:>18.1} {:>14.2}",
        "TCP",
        throughput(tcp, DcpTag::NonDcp),
        latency(tcp, DcpTag::NonDcp)
    );
    println!();
    println!("Expected shape (paper): DCP ≈ GBN at line rate, both far above TCP;");
    println!("TCP latency an order of magnitude higher.");
}
