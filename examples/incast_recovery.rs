//! Incast recovery: watch the lossless control plane at work.
//!
//! An 8-to-1 incast squeezes through one 100 G cross-switch link with a
//! small trim threshold. Under DCP, overflow packets are trimmed to 57-byte
//! header-only notifications, bounced by the receiver, and retransmitted
//! precisely — no retransmission timeout ever fires. The same scenario on
//! RNIC-GBN drops packets at the threshold and recovers by go-back-N and
//! RTOs.
//!
//! Run with: `cargo run --release -p dcp-bench --example incast_recovery`

use dcp_core::dcp_switch_config;
use dcp_netsim::packet::FlowId;
use dcp_netsim::switch::SwitchConfig;
use dcp_netsim::time::{MS, SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

const FAN_IN: usize = 8;
const BYTES: u64 = 1 << 20;

fn run(kind: TransportKind, cfg: SwitchConfig) {
    let mut sim = Simulator::new(7);
    let mut cfg = cfg;
    cfg.data_q_threshold = 32 * 1024;
    let topo = topology::two_switch_testbed(&mut sim, cfg, FAN_IN, 100.0, &[100.0], US, US);
    let victim = topo.hosts[FAN_IN];
    for i in 0..FAN_IN {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair(
            kind,
            CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
            flow,
            topo.hosts[i],
            victim,
        );
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(victim, flow, rx);
        sim.post(
            topo.hosts[i],
            flow,
            0,
            WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
            BYTES,
        );
    }
    let mut done = 0;
    let mut jct = 0;
    while done < FAN_IN && sim.now() < 10 * SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                done += 1;
                jct = c.at;
            }
        });
    }
    let ns = sim.net_stats();
    let mut retx = 0;
    let mut timeouts = 0;
    let mut ho = 0;
    for i in 0..FAN_IN {
        let st = sim.endpoint_stats(topo.hosts[i], FlowId(i as u32 + 1));
        retx += st.retx_pkts;
        timeouts += st.timeouts;
        ho += st.ho_received;
    }
    println!(
        "{:<12} jct={:>7.3} ms  trims={:<6} drops={:<6} HO-notifs={:<6} retx={:<6} RTOs={}",
        format!("{kind:?}"),
        jct as f64 / MS as f64,
        ns.trims,
        ns.data_drops,
        ho,
        retx,
        timeouts
    );
}

fn main() {
    println!(
        "8-to-1 incast of {} x {} MB through one 100G link (trim threshold 32 KB)",
        FAN_IN,
        BYTES >> 20
    );
    run(TransportKind::Dcp, dcp_switch_config(LoadBalance::Ecmp, 16));
    run(TransportKind::Gbn, SwitchConfig::lossy(LoadBalance::Ecmp));
    run(TransportKind::Irn, SwitchConfig::lossy(LoadBalance::Ecmp));
    println!();
    println!("Expected shape (paper §4/§6): DCP converts every drop into a header-only");
    println!("notification (drops=0, RTOs=0, retx == HO-notifs); GBN/IRN drop packets and");
    println!("lean on timeouts, inflating completion time.");
}
