//! Telemetry integration tests: probes must be invisible to the
//! simulation (same-seed digests identical with telemetry off, on, or
//! absent), the flight recorder must capture the tail of a wedged run,
//! and the strict conservation identities must hold at quiescence for
//! every transport.

use dcp_core::dcp_switch_config;
use dcp_netsim::packet::FlowId;
use dcp_netsim::switch::SwitchConfig;
use dcp_netsim::time::{MS, SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_telemetry::{EventLog, FlightRecorder, NullProbe, Probe};
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// The determinism-suite workload (4-to-1 DCP incast over adaptive
/// routing: trimming, HO recovery and RNG port choices all active), with
/// an optional probe installed. Returns the completion-stream digest and
/// the number of trace lines the probe captured (0 without an `EventLog`).
fn run_digest(seed: u64, probe: Option<Box<dyn Probe>>) -> (u64, usize) {
    let fan_in = 4;
    let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, fan_in + 2);
    let mut sim = Simulator::new(seed);
    if let Some(p) = probe {
        sim.set_probe(p);
    }
    let topo = topology::two_switch_testbed(&mut sim, cfg, fan_in, 100.0, &[25.0; 2], US, US);
    let victim = topo.hosts[fan_in];
    for i in 0..fan_in {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, topo.hosts[i], victim);
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(victim, flow, rx);
        for m in 0..8u64 {
            sim.post(
                topo.hosts[i],
                flow,
                m,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                256 * 1024,
            );
        }
    }
    let mut h = FNV_OFFSET;
    while sim.now() < SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            h = fnv_u64(h, c.host.0 as u64);
            h = fnv_u64(h, c.flow.0 as u64);
            h = fnv_u64(h, c.wr_id);
            h = fnv_u64(h, matches!(c.kind, CompletionKind::RecvComplete) as u64);
            h = fnv_u64(h, c.bytes);
            h = fnv_u64(h, c.at);
        });
    }
    h = fnv_bytes(h, format!("{:?}", sim.net_stats()).as_bytes());
    h = fnv_u64(h, sim.events_processed());
    h = fnv_u64(h, sim.now());
    let lines = sim.probe_mut().map(|p| p.drain_jsonl().len()).unwrap_or(0);
    (h, lines)
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let (bare, n0) = run_digest(5, None);
    let (with_null, n1) = run_digest(5, Some(Box::new(NullProbe)));
    let (with_recorder, n2) = run_digest(5, Some(Box::new(FlightRecorder::default())));
    let (with_log, n3) = run_digest(5, Some(Box::new(EventLog::default())));
    assert_eq!(bare, with_null, "NullProbe must not change the trace");
    assert_eq!(bare, with_recorder, "FlightRecorder must not change the trace");
    assert_eq!(bare, with_log, "EventLog must not change the trace");
    assert_eq!((n0, n1, n2), (0, 0, 0), "only EventLog retains lines");
    assert!(n3 > 0, "the probes must actually have fired ({n3} lines)");
}

#[test]
fn flight_recorder_captures_a_wedged_run() {
    // A fabric that drops every data packet: senders retransmit forever,
    // nothing completes, and the deadline passes with events pending.
    let mut cfg = SwitchConfig::lossy(LoadBalance::Ecmp);
    cfg.forced_loss_rate = 1.0;
    let mut sim = Simulator::new(9);
    sim.set_probe(Box::new(FlightRecorder::default()));
    let topo = topology::two_switch_testbed(&mut sim, cfg, 2, 100.0, &[100.0; 2], US, US);
    let flow = FlowId(1);
    let (tx, rx) =
        endpoint_pair(TransportKind::Gbn, CcKind::None, flow, topo.hosts[0], topo.hosts[2]);
    sim.install_endpoint(topo.hosts[0], flow, tx);
    sim.install_endpoint(topo.hosts[2], flow, rx);
    sim.post(topo.hosts[0], flow, 0, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, 1 << 20);
    let quiesced = sim.run_to_quiescence(5 * MS);
    assert!(!quiesced, "a 100%-loss fabric must not quiesce");
    let dump = sim.flight_dump().expect("recorder installed, events recorded");
    assert!(dump.contains("drop"), "dump should show the drops: {dump}");
    assert!(dump.contains("retx"), "dump should show the retransmissions: {dump}");
}

#[test]
fn strict_conservation_at_quiescence_for_every_transport() {
    let kinds = [
        TransportKind::Gbn,
        TransportKind::Irn,
        TransportKind::MpRdma,
        TransportKind::RackTlp,
        TransportKind::TimeoutOnly,
        TransportKind::Dcp,
    ];
    for kind in kinds {
        // The transport's natural fabric, plus forced loss so the drop
        // accounting is exercised, not just the happy path.
        let mut cfg = match kind {
            TransportKind::Dcp => dcp_switch_config(LoadBalance::AdaptiveRouting, 6),
            TransportKind::MpRdma => {
                let mut c = SwitchConfig::lossless(LoadBalance::Ecmp);
                c.ecn = Some(dcp_netsim::EcnConfig::default_100g());
                c
            }
            _ => SwitchConfig::lossy(LoadBalance::Ecmp),
        };
        if kind != TransportKind::MpRdma {
            cfg.forced_loss_rate = 0.02;
        }
        let mut sim = Simulator::new(11);
        let topo = topology::two_switch_testbed(&mut sim, cfg, 2, 100.0, &[25.0; 2], US, US);
        for i in 0..2 {
            let flow = FlowId(i as u32 + 1);
            let (tx, rx) = endpoint_pair(
                kind,
                CcKind::Bdp { gbps: 100.0, rtt: 12 * US },
                flow,
                topo.hosts[i],
                topo.hosts[2 + i],
            );
            sim.install_endpoint(topo.hosts[i], flow, tx);
            sim.install_endpoint(topo.hosts[2 + i], flow, rx);
            sim.post(
                topo.hosts[i],
                flow,
                0,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                1 << 20,
            );
        }
        assert!(sim.run_to_quiescence(10 * SEC), "{kind:?} must drain");
        let cons = sim.check_conservation(true);
        assert!(cons.is_ok(), "{kind:?}: {:?}", cons.violations);
    }
}
