//! Workload-level shape regressions for the motivation experiments
//! (Figs. 1–2) at reduced scale.

use dcp_core::dcp_switch_config;
use dcp_netsim::switch::SwitchConfig;
use dcp_netsim::time::{SEC, US};
use dcp_netsim::{topology, LoadBalance, Simulator};
use dcp_workloads::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn clos(seed: u64, cfg: SwitchConfig) -> (Simulator, dcp_netsim::Topology) {
    let mut sim = Simulator::new(seed);
    let topo = topology::clos(&mut sim, cfg, 2, 4, 4, 100.0, 100.0, US, US);
    (sim, topo)
}

#[test]
fn fig1_shape_irn_spurious_ratio_grows_with_size_dcp_zero() {
    // Fig. 1: IRN's retransmission ratio under packet-level LB affects all
    // size classes; DCP's is identically zero.
    let mut rng = StdRng::seed_from_u64(11);
    let flows = poisson_flows(&mut rng, &SizeDist::websearch(), 16, 100.0, 0.3, 150);
    let bdp = CcKind::Bdp { gbps: 100.0, rtt: 12 * US };

    let (mut sim, topo) = clos(1, SwitchConfig::lossy(LoadBalance::Spray));
    let irn = run_flows(&mut sim, &topo, TransportKind::Irn, bdp, &flows, 30 * SEC);
    assert_eq!(unfinished(&irn), 0);
    let spurious_flows = irn.iter().filter(|r| r.tx.retx_pkts > 0).count();
    assert!(
        spurious_flows * 4 >= irn.len(),
        "a sizable share of flows retransmit spuriously: {spurious_flows}/{}",
        irn.len()
    );

    let (mut sim, topo) = clos(1, dcp_switch_config(LoadBalance::Spray, 16));
    let dcp = run_flows(&mut sim, &topo, TransportKind::Dcp, CcKind::None, &flows, 30 * SEC);
    assert_eq!(unfinished(&dcp), 0);
    let trims = sim.net_stats().trims;
    let dcp_retx: u64 = dcp.iter().map(|r| r.tx.retx_pkts).sum();
    assert!(dcp_retx <= trims, "DCP retransmits only real losses: {dcp_retx} vs {trims} trims");
    let dcp_dups: u64 = dcp.iter().map(|r| r.rx.duplicates).sum();
    assert_eq!(dcp_dups, 0, "no spurious deliveries under DCP");
}

#[test]
fn fig2_shape_irn_timeouts_dcp_none_under_incast() {
    // Fig. 2: WebSearch background + incast; IRN accumulates RTOs, DCP has
    // none.
    let mk_flows = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let bg = poisson_flows(&mut rng, &SizeDist::websearch(), 16, 100.0, 0.25, 80);
        let horizon = bg.last().unwrap().start;
        let inc = incast_flows(&mut rng, 16, 100.0, 0.08, 8, 64 * 1024, horizon);
        merge(bg, inc)
    };
    let bdp = CcKind::Bdp { gbps: 100.0, rtt: 12 * US };

    let (mut sim, topo) = clos(2, SwitchConfig::lossy(LoadBalance::AdaptiveRouting));
    let irn = run_flows(&mut sim, &topo, TransportKind::Irn, bdp, &mk_flows(13), 60 * SEC);
    assert_eq!(unfinished(&irn), 0);
    let irn_rtos: u64 = irn.iter().map(|r| r.tx.timeouts).sum();

    let (mut sim, topo) = clos(2, dcp_switch_config(LoadBalance::AdaptiveRouting, 16));
    let dcp = run_flows(&mut sim, &topo, TransportKind::Dcp, CcKind::None, &mk_flows(13), 60 * SEC);
    assert_eq!(unfinished(&dcp), 0);
    let dcp_rtos: u64 = dcp.iter().map(|r| r.tx.timeouts).sum();

    assert!(irn_rtos > 0, "IRN must hit RTOs under incast (got {irn_rtos})");
    assert_eq!(dcp_rtos, 0, "DCP flows experience no timeout (Fig. 2)");
}

#[test]
fn incast_flows_finish_faster_under_dcp_than_irn() {
    // The victim-link incast flows are exactly where RTO stalls hurt; DCP's
    // tail should beat IRN's.
    let mk_flows = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        incast_flows(&mut rng, 16, 100.0, 0.05, 8, 128 * 1024, 3_000_000)
    };
    let ideal = IdealFct::intra_dc_100g();
    let bdp = CcKind::Bdp { gbps: 100.0, rtt: 12 * US };
    let tail = |kind, cfg| {
        let (mut sim, topo) = clos(3, cfg);
        let rec = run_flows(
            &mut sim,
            &topo,
            kind,
            if kind == TransportKind::Dcp { CcKind::None } else { bdp },
            &mk_flows(17),
            60 * SEC,
        );
        assert_eq!(unfinished(&rec), 0);
        overall_slowdown(&rec, &ideal, 95.0)
    };
    let irn = tail(TransportKind::Irn, SwitchConfig::lossy(LoadBalance::AdaptiveRouting));
    let dcp = tail(TransportKind::Dcp, dcp_switch_config(LoadBalance::AdaptiveRouting, 16));
    assert!(dcp < irn, "DCP P95 slowdown {dcp:.2} must beat IRN {irn:.2}");
}
