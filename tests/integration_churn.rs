//! Connection-churn regression tests for the slab connection table:
//! install / remove / reinstall cycles must be trace-equivalent to fresh
//! installs, stale generation-checked `QpRef`s must never resurrect a
//! recycled slot, and a fabric under continuous flow churn must still
//! satisfy strict packet conservation at quiescence.

use dcp_core::dcp_switch_config;
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{Nanos, MS, SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, QpRef, Simulator, Topology};
use dcp_rdma::qp::WorkReqOp;
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};
use proptest::prelude::*;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for &b in &v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn testbed(seed: u64) -> (Simulator, Topology) {
    let cfg = dcp_switch_config(LoadBalance::Ecmp, 4);
    let mut sim = Simulator::new(seed);
    let topo = topology::two_switch_testbed(&mut sim, cfg, 2, 100.0, &[100.0], US, US);
    (sim, topo)
}

/// Runs one message over `flow` and digests its completion stream.
fn run_one_message(sim: &mut Simulator, src: dcp_netsim::packet::NodeId, flow: FlowId) -> u64 {
    sim.post(src, flow, 7, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, 64 << 10);
    let deadline = sim.now() + SEC;
    assert!(sim.run_to_quiescence(deadline), "message must complete");
    let mut h = FNV_OFFSET;
    sim.for_each_completion(|c| {
        h = fnv_u64(h, c.host.0 as u64);
        h = fnv_u64(h, c.flow.0 as u64);
        h = fnv_u64(h, c.wr_id);
        h = fnv_u64(h, matches!(c.kind, CompletionKind::RecvComplete) as u64);
        h = fnv_u64(h, c.bytes);
        h = fnv_u64(h, c.at);
    });
    h
}

/// A recycled endpoint pair must produce the same completion stream as a
/// freshly constructed one: install → run → remove → recycle → reinstall
/// on a new flow id, and the second transfer's digest (relative to its
/// start) matches a fresh pair's on the same fabric.
#[test]
fn recycle_is_trace_equivalent_to_fresh() {
    for kind in [TransportKind::Dcp, TransportKind::Gbn, TransportKind::Irn] {
        // Reference: two fresh pairs run back-to-back on one fabric.
        let fresh = {
            let (mut sim, topo) = testbed(23);
            let (a, b) = (topo.hosts[0], topo.hosts[2]);
            let mut h = FNV_OFFSET;
            for (i, flow) in [FlowId(1), FlowId(2)].into_iter().enumerate() {
                let (tx, rx) = endpoint_pair(kind, CcKind::None, flow, a, b);
                let qt = sim.install_endpoint(a, flow, tx);
                let qr = sim.install_endpoint(b, flow, rx);
                h = fnv_u64(h, run_one_message(&mut sim, a, flow));
                if i == 0 {
                    sim.remove_endpoint(a, qt).expect("sender live");
                    sim.remove_endpoint(b, qr).expect("receiver live");
                }
            }
            h = fnv_u64(h, sim.events_processed());
            fnv_u64(h, sim.now())
        };
        // Same schedule, but the second pair is the first pair recycled.
        let recycled = {
            let (mut sim, topo) = testbed(23);
            let (a, b) = (topo.hosts[0], topo.hosts[2]);
            let mut h = FNV_OFFSET;
            let flow = FlowId(1);
            let (tx, rx) = endpoint_pair(kind, CcKind::None, flow, a, b);
            let qt = sim.install_endpoint(a, flow, tx);
            let qr = sim.install_endpoint(b, flow, rx);
            h = fnv_u64(h, run_one_message(&mut sim, a, flow));
            let mut tx = sim.remove_endpoint(a, qt).expect("sender live");
            let mut rx = sim.remove_endpoint(b, qr).expect("receiver live");
            let flow2 = FlowId(2);
            if tx.recycle(flow2, a, b) {
                assert!(rx.recycle(flow2, b, a), "receiver recycles when sender does");
            } else {
                // Transport opts out of in-place recycling: fall back the
                // way a driver would.
                let pair = endpoint_pair(kind, CcKind::None, flow2, a, b);
                tx = pair.0;
                rx = pair.1;
            }
            sim.install_endpoint(a, flow2, tx);
            sim.install_endpoint(b, flow2, rx);
            h = fnv_u64(h, run_one_message(&mut sim, a, flow2));
            h = fnv_u64(h, sim.events_processed());
            fnv_u64(h, sim.now())
        };
        assert_eq!(
            fresh, recycled,
            "{kind:?}: recycled pair must replay the fresh pair's schedule exactly"
        );
    }
}

/// Same seed, same churn schedule ⇒ byte-identical digest, including the
/// slot/generation values the slab hands out.
#[test]
fn churn_schedule_same_seed_same_digest() {
    fn run(seed: u64, rounds: u32) -> u64 {
        let (mut sim, topo) = testbed(seed);
        let (a, b) = (topo.hosts[0], topo.hosts[3]);
        let mut h = FNV_OFFSET;
        let mut pool: Vec<(Box<dyn dcp_netsim::Endpoint>, Box<dyn dcp_netsim::Endpoint>)> =
            Vec::new();
        for round in 0..rounds {
            let flow = FlowId(round + 1);
            let (tx, rx) = match pool.pop() {
                Some((mut tx, mut rx)) => {
                    assert!(tx.recycle(flow, a, b), "DCP sender recycles in place");
                    assert!(rx.recycle(flow, b, a), "DCP receiver recycles in place");
                    (tx, rx)
                }
                None => endpoint_pair(TransportKind::Dcp, CcKind::None, flow, a, b),
            };
            let qt = sim.install_endpoint(a, flow, tx);
            let qr = sim.install_endpoint(b, flow, rx);
            h = fnv_u64(h, ((qt.slot as u64) << 32) | qt.gen as u64);
            h = fnv_u64(h, ((qr.slot as u64) << 32) | qr.gen as u64);
            sim.post(a, flow, round as u64, WorkReqOp::Write { remote_addr: 0, rkey: 1 }, 32 << 10);
            assert!(sim.run_to_quiescence(sim.now() + SEC));
            sim.for_each_completion(|c| {
                h = fnv_u64(h, c.wr_id);
                h = fnv_u64(h, c.bytes);
                h = fnv_u64(h, c.at);
            });
            let tx = sim.remove_endpoint(a, qt).expect("sender live");
            let rx = sim.remove_endpoint(b, qr).expect("receiver live");
            pool.push((tx, rx));
        }
        h = fnv_u64(h, sim.events_processed());
        fnv_u64(h, sim.now())
    }
    assert_eq!(run(41, 6), run(41, 6), "churn must be deterministic");
    // (A single sequential flow on an idle ECMP fabric is seed-invariant,
    // so sensitivity is checked against the schedule, not the seed.)
    assert_ne!(run(41, 6), run(41, 7), "digest must depend on the schedule");
}

/// Strict conservation at quiescence while connections churn mid-flight:
/// every packet a removed endpoint ever sent must still be accounted for.
#[test]
fn strict_conservation_under_churn() {
    let (mut sim, topo) = testbed(47);
    let n_hosts = topo.hosts.len();
    let mut live: Vec<(
        FlowId,
        dcp_netsim::packet::NodeId,
        QpRef,
        dcp_netsim::packet::NodeId,
        QpRef,
    )> = Vec::new();
    let mut next_id = 1u32;
    for wave in 0..8usize {
        // Install a wave of flows across distinct host pairs.
        for i in 0..3usize {
            let src = topo.hosts[(wave + i) % n_hosts];
            let dst = topo.hosts[(wave + i + 1) % n_hosts];
            let flow = FlowId(next_id);
            next_id += 1;
            let (tx, rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, src, dst);
            let qt = sim.install_endpoint(src, flow, tx);
            let qr = sim.install_endpoint(dst, flow, rx);
            sim.post(
                src,
                flow,
                flow.0 as u64,
                WorkReqOp::Write { remote_addr: 0, rkey: 1 },
                128 << 10,
            );
            live.push((flow, src, qt, dst, qr));
        }
        // Let traffic interleave, then retire the oldest completed wave.
        let t: Nanos = sim.now() + MS / 4;
        sim.run_until(t);
        if wave >= 2 {
            // Drain to make the oldest wave's completions certain, then
            // remove those endpoints while others still have packets in
            // flight on the next run_until.
            assert!(sim.run_to_quiescence(sim.now() + SEC));
            for (_, src, qt, dst, qr) in live.drain(..3) {
                sim.remove_endpoint(src, qt).expect("sender live");
                sim.remove_endpoint(dst, qr).expect("receiver live");
            }
        }
    }
    assert!(sim.run_to_quiescence(sim.now() + SEC), "churned fabric must drain");
    let c = sim.check_conservation(true);
    assert!(c.is_ok(), "strict conservation under churn: {:?}", c.violations);
}

/// Generation safety: after any interleaving of installs and removals,
/// every retired `QpRef` is permanently dead — `remove_endpoint` returns
/// `None` for it even when its slot has been reused by a later flow —
/// and every live ref still resolves. Returns an error message instead
/// of panicking so proptest can shrink the op sequence.
fn check_generation_safety(ops: &[u8]) -> Result<(), String> {
    let (mut sim, topo) = testbed(53);
    let (a, b) = (topo.hosts[0], topo.hosts[1]);
    let mut next_flow = 1u32;
    let mut live: Vec<(FlowId, QpRef)> = Vec::new();
    let mut dead: Vec<QpRef> = Vec::new();
    for &op in ops {
        match op {
            // Install a fresh sender endpoint (receiver-less is fine:
            // nothing is posted, the table is what's under test).
            0 | 1 => {
                let flow = FlowId(next_flow);
                next_flow += 1;
                let (tx, _rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, a, b);
                let qp = sim.install_endpoint(a, flow, tx);
                live.push((flow, qp));
            }
            // Remove the oldest live endpoint; its ref joins the dead set.
            2 => {
                if let Some((flow, qp)) = (!live.is_empty()).then(|| live.remove(0)) {
                    if sim.remove_endpoint(a, qp).is_none() {
                        return Err(format!("live ref {qp:?} failed to remove"));
                    }
                    if sim.host(a).qp_ref(flow).is_some() {
                        return Err(format!("flow {flow:?} still mapped after removal"));
                    }
                    dead.push(qp);
                }
            }
            // Probe every dead ref: none may resolve or remove again.
            _ => {
                for &qp in &dead {
                    if sim.remove_endpoint(a, qp).is_some() {
                        return Err(format!(
                            "stale ref (slot {}, gen {}) resurrected",
                            qp.slot, qp.gen
                        ));
                    }
                }
            }
        }
    }
    // Every live ref still resolves through the flow page table.
    for (flow, qp) in live {
        if sim.host(a).qp_ref(flow) != Some(qp) {
            return Err(format!("live flow {flow:?} no longer resolves to {qp:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn stale_qprefs_never_resurrect(ops in proptest::collection::vec(0u8..4, 1..64)) {
        if let Err(msg) = check_generation_safety(&ops) {
            prop_assert!(false, "{}", msg);
        }
    }
}
