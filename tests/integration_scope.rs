//! dcp-scope integration: span reconstruction determinism, tracing
//! transparency, and the anomaly monitors firing on purpose-built fault
//! scenarios.
//!
//! Pinned contracts:
//!
//! 1. **Span output is engine-invariant.** The `dcp-trace/v1` document a
//!    run produces is byte-identical whether the engine is serial, 2-shard
//!    on one worker, or 2-shard on four workers — the sharded engine's
//!    timestamp-merged probe flush plus the span builder's sorted maps.
//! 2. **Tracing is invisible.** Full span + monitor capture leaves the
//!    completion/counter digest identical to a bare run.
//! 3. **Sharded trace lines stay time-ordered.** The regression pin for
//!    the per-shard probe-buffer merge: JSONL `at` fields never decrease.
//! 4. **Monitors fire when they should.** A BER-storm fault plan trips
//!    the retx-storm detector (with a named dominant cause); a pause-storm
//!    plan on a lossless fabric trips the PFC pause-tree monitor.
//! 5. **The Perfetto export is real JSON** with slices, instants and
//!    matched flow-arrow pairs.

use dcp_core::dcp_switch_config;
use dcp_faults::engine::FaultEngine;
use dcp_faults::loss::LossModel;
use dcp_faults::plan::{FaultEvent, FaultPlan};
use dcp_netsim::packet::FlowId;
use dcp_netsim::switch::SwitchConfig;
use dcp_netsim::time::{MS, SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_scope::{chrome_trace, Monitors, ScopeProbe, SpanBuilder};
use dcp_telemetry::{EventLog, Fanout, Json, Probe, ProbeEvent};
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// The reference scenario: 2-spine/4-leaf CLOS, cross-leaf DCP flows under
/// adaptive routing — trimming, header-only recovery and RNG port choices
/// all active. Runs to `SEC`, returns the completion digest plus whatever
/// trace lines the probe captured.
fn run_reference(
    seed: u64,
    probe: Option<Box<dyn Probe>>,
    shards: usize,
    workers: usize,
) -> (u64, Vec<String>) {
    let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, 6);
    let mut sim = Simulator::new(seed);
    sim.disable_auto_partition();
    if let Some(p) = probe {
        sim.set_probe(p);
    }
    let topo = topology::clos(&mut sim, cfg, 2, 4, 2, 100.0, 100.0, US, US);
    if shards > 1 {
        assert!(sim.partition(&topo, shards), "reference clos must partition");
        sim.set_workers(workers);
    }
    for i in 0..4usize {
        let flow = FlowId(i as u32 + 1);
        let (src, dst) = (topo.hosts[i], topo.hosts[(i + 3) % 8]);
        let (tx, rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, src, dst);
        sim.install_endpoint(src, flow, tx);
        sim.install_endpoint(dst, flow, rx);
        for m in 0..4u64 {
            sim.post(
                src,
                flow,
                m,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                128 * 1024,
            );
        }
    }
    let mut h = FNV_OFFSET;
    while sim.now() < SEC {
        if sim.advance().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            h = fnv_u64(h, c.host.0 as u64);
            h = fnv_u64(h, c.flow.0 as u64);
            h = fnv_u64(h, c.wr_id);
            h = fnv_u64(h, matches!(c.kind, CompletionKind::RecvComplete) as u64);
            h = fnv_u64(h, c.bytes);
            h = fnv_u64(h, c.at);
        });
    }
    h = fnv_bytes(h, format!("{:?}", sim.net_stats()).as_bytes());
    h = fnv_u64(h, sim.events_processed());
    h = fnv_u64(h, sim.now());
    let lines = sim.probe_mut().map(|p| p.drain_jsonl()).unwrap_or_default();
    (h, lines)
}

/// Span document for one engine configuration of the reference scenario.
fn span_doc(seed: u64, shards: usize, workers: usize) -> (u64, String) {
    let (digest, lines) = run_reference(seed, Some(Box::new(EventLog::default())), shards, workers);
    let mut b = SpanBuilder::new();
    let joined = lines.join("\n");
    assert!(b.ingest_jsonl(&joined) > 0, "trace must contain events");
    (digest, b.to_json().render())
}

#[test]
fn span_document_is_identical_across_engines() {
    // As in `integration_sharded`: the partition itself may legitimately
    // reshape the run (per-shard RNG streams), but for a FIXED partition
    // the worker count must be invisible — digest and the full rendered
    // span document alike, and repeats must be stable.
    let (d_sh2w1, sh2w1) = span_doc(3, 2, 1);
    let (d_sh2w4, sh2w4) = span_doc(3, 2, 4);
    assert_eq!(d_sh2w1, d_sh2w4, "workers must be invisible to the digest");
    assert_eq!(sh2w1, sh2w4, "span doc must not depend on worker count");
    let (d_again, again) = span_doc(3, 2, 4);
    assert_eq!(d_sh2w4, d_again, "4-worker digest must repeat");
    assert_eq!(sh2w4, again, "4-worker span doc must repeat");
}

#[test]
fn span_capture_does_not_change_the_digest() {
    let (bare, _) = run_reference(5, None, 1, 1);
    // Once through the fused capture probe (what perf_events installs) and
    // once through an explicit Fanout of the two halves: both must be
    // invisible to the simulation.
    let (fused, _) = run_reference(5, Some(Box::new(ScopeProbe::new())), 1, 1);
    assert_eq!(bare, fused, "fused span + monitor capture must be passive");
    let probe: Box<dyn Probe> = Box::new(Fanout::new(vec![
        Box::new(SpanBuilder::new()),
        Box::new(Monitors::with_defaults()),
    ]));
    let (probed, _) = run_reference(5, Some(probe), 1, 1);
    assert_eq!(bare, probed, "span + monitor capture must be passive");
}

#[test]
fn sharded_trace_lines_are_time_ordered() {
    let (_, lines) = run_reference(7, Some(Box::new(EventLog::default())), 2, 4);
    assert!(!lines.is_empty());
    let mut last = 0u64;
    for line in &lines {
        let (at, _) = Json::parse(line)
            .ok()
            .as_ref()
            .and_then(ProbeEvent::from_json)
            .unwrap_or_else(|| panic!("unparseable trace line: {line}"));
        assert!(at >= last, "timestamps regressed: {at} after {last}");
        last = at;
    }
}

/// Drains a run's `EventLog` into parsed `(at, event)` pairs.
fn drain_events(sim: &mut Simulator) -> Vec<(u64, ProbeEvent)> {
    let lines = sim.probe_mut().expect("probe installed").drain_jsonl();
    let events: Vec<(u64, ProbeEvent)> = lines
        .iter()
        .filter_map(|l| Json::parse(l).ok().as_ref().and_then(ProbeEvent::from_json))
        .collect();
    assert_eq!(events.len(), lines.len(), "every trace line must parse");
    events
}

#[test]
fn retx_storm_monitor_fires_under_a_ber_storm() {
    // Purpose-built fault plan: a brutal BER on every sender access link
    // turns GBN's whole-window rewinds into a retransmission storm.
    let cfg = SwitchConfig::lossy(LoadBalance::Ecmp);
    let mut sim = Simulator::new(21);
    sim.set_probe(Box::new(EventLog::default()));
    let topo = topology::two_switch_testbed(&mut sim, cfg, 4, 100.0, &[100.0; 2], US, US);
    let s1 = topo.leaves[0];
    let plan = FaultPlan::new(0xBE)
        .with_loss_on(&[(s1, 0), (s1, 1), (s1, 2), (s1, 3)], LossModel::Ber { ber: 1e-5 })
        .sorted();
    FaultEngine::install(&mut sim, plan);
    for i in 0..4 {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) =
            endpoint_pair(TransportKind::Gbn, CcKind::None, flow, topo.hosts[i], topo.hosts[4 + i]);
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(topo.hosts[4 + i], flow, rx);
        sim.post(
            topo.hosts[i],
            flow,
            0,
            WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
            2 << 20,
        );
    }
    sim.run_until(200 * MS);
    let events = drain_events(&mut sim);

    let mut monitors = Monitors::with_defaults();
    monitors.retx_storm = dcp_scope::RetxStormMonitor::new(MS, 32);
    for (at, ev) in &events {
        monitors.record(*at, ev);
    }
    assert!(
        monitors.retx_storm.tripped(),
        "BER storm must trip the detector: {:?}",
        monitors.retx_storm.dump()
    );
    // GBN recovers by NAK-triggered rewind and RTO: the dominant cause is
    // a real transport signal, never left unattributed.
    let mut b = SpanBuilder::new();
    for (at, ev) in &events {
        b.record(*at, ev);
    }
    let causes: Vec<&'static str> =
        b.packets().flat_map(|(_, s)| s.retx.iter().map(|&(_, c)| c.name())).collect();
    assert!(!causes.is_empty(), "BER storm must retransmit");
    assert!(causes.iter().all(|&c| c != "unknown"), "unattributed retx in {causes:?}");
}

#[test]
fn pfc_tree_monitor_fires_under_a_pause_storm() {
    // Lossless fabric + a long PauseStorm wedging a cross-switch link:
    // backpressure must reach distinct switches, growing the pause tree.
    let cfg = SwitchConfig::lossless(LoadBalance::Ecmp);
    let mut sim = Simulator::new(23);
    sim.set_probe(Box::new(EventLog::default()));
    let topo = topology::two_switch_testbed(&mut sim, cfg, 4, 100.0, &[100.0; 2], US, US);
    let plan = FaultPlan::new(0xFA)
        .at(50 * US, FaultEvent::PauseStorm { sw: topo.leaves[1], port: 4, duration: 5 * MS })
        .sorted();
    FaultEngine::install(&mut sim, plan);
    for i in 0..4 {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair(
            TransportKind::TimeoutOnly,
            CcKind::None,
            flow,
            topo.hosts[i],
            topo.hosts[4],
        );
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(topo.hosts[4], flow, rx);
        sim.post(
            topo.hosts[i],
            flow,
            0,
            WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
            4 << 20,
        );
    }
    sim.run_until(20 * MS);
    let events = drain_events(&mut sim);

    let mut monitors = Monitors::with_defaults();
    monitors.pfc_tree = dcp_scope::PfcTreeMonitor::new(2);
    for (at, ev) in &events {
        monitors.record(*at, ev);
    }
    assert!(
        monitors.pfc_tree.tripped(),
        "pause storm must spread across switches: {:?}",
        monitors.pfc_tree.dump()
    );
    assert!(monitors.pfc_tree.max_nodes >= 2, "tree must span both switches");
}

#[test]
fn perfetto_export_is_valid_and_causally_linked() {
    // A lossy DCP run: trims feed flow arrows ending at retransmissions.
    let mut cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, 6);
    cfg.forced_loss_rate = 0.01;
    let mut sim = Simulator::new(31);
    sim.set_probe(Box::new(EventLog::default()));
    let topo = topology::two_switch_testbed(&mut sim, cfg, 2, 100.0, &[25.0; 2], US, US);
    for i in 0..2 {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) =
            endpoint_pair(TransportKind::Dcp, CcKind::None, flow, topo.hosts[i], topo.hosts[2 + i]);
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(topo.hosts[2 + i], flow, rx);
        sim.post(
            topo.hosts[i],
            flow,
            0,
            WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
            128 * 1024,
        );
    }
    assert!(sim.run_to_quiescence(10 * SEC));
    let lines = sim.probe_mut().unwrap().drain_jsonl();
    let events: Vec<(u64, ProbeEvent)> = lines
        .iter()
        .filter_map(|l| Json::parse(l).ok().as_ref().and_then(ProbeEvent::from_json))
        .collect();
    assert!(!events.is_empty());

    let doc = chrome_trace(&events, None);
    let parsed = Json::parse(&doc.render()).expect("perfetto doc is valid JSON");
    let evs = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let ph = |p: &str| evs.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some(p)).count();
    assert!(ph("X") > 0, "queue-residency slices");
    assert!(ph("i") > 0, "instant markers");
    assert!(ph("M") > 0, "process metadata");
    // Every finished arrow has a matching start (ids pair up).
    assert!(ph("f") <= ph("s"), "arrow finishes need starts");
    assert!(ph("f") > 0, "forced loss must produce at least one causal retx arrow");

    // The span side of the same capture: recovery time is observable and
    // every retransmission is cause-attributed.
    let mut b = SpanBuilder::new();
    for (at, ev) in &events {
        b.record(*at, ev);
    }
    let retx_causes: Vec<&'static str> =
        b.packets().flat_map(|(_, s)| s.retx.iter().map(|&(_, c)| c.name())).collect();
    assert!(!retx_causes.is_empty(), "forced loss must retransmit");
    assert!(retx_causes.iter().all(|&c| c != "unknown"), "causes: {retx_causes:?}");
}
