//! Conformance & liveness integration tests for `dcp-check`:
//!
//! * a deliberately cyclic lossless ring must PFC-deadlock, and
//!   [`pfc_deadlock_cycle`] must name the ring — while a lossless *tree*
//!   under incast pauses plenty but never cycles;
//! * re-enabling the pre-fix RACK-TLP RTO discipline
//!   (`RackConfig::broken_rto_restart`, DESIGN.md Finding 5) must be
//!   caught *by the liveness watchdog as a classified `Livelock`*, not by
//!   a harness timeout, while the fixed build recovers through its
//!   (undeferred) RTO on the identical schedule;
//! * the ddmin shrinker must reduce the padded fault plan that triggers
//!   that livelock to ≤ 3 events and emit a replayable JSON repro;
//! * dropping the *final* eMSN ACK of a DCP flow (DESIGN.md Finding 2)
//!   must recover via coarse timeout + re-ACK-on-stale with the delivery
//!   oracle confirming exactly-once completion;
//! * adversarial runs must be byte-identical across `DCP_THREADS`.

use dcp_bench::sweep_with_threads;
use dcp_check::{
    pfc_deadlock_cycle, shrink_plan, shrink_repro, Adversary, AdversaryProfile, DeliveryOracle,
    Liveness, Repro, Watchdog, WatchdogConfig,
};
use dcp_core::dcp_switch_config;
use dcp_faults::{FaultEngine, FaultEvent, FaultPlan, LossModel};
use dcp_netsim::packet::{FlowId, NodeId};
use dcp_netsim::switch::{PfcConfig, SwitchConfig};
use dcp_netsim::time::{Nanos, MS, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::headers::DcpTag;
use dcp_rdma::qp::WorkReqOp;
use dcp_telemetry::{Fanout, FlightRecorder};
use dcp_transport::cc::NoCc;
use dcp_transport::common::{FlowCfg, Placement};
use dcp_transport::racktlp::{rack_pair, RackConfig};
use dcp_workloads::{endpoint_pair_opts, CcKind, RunOpts, TransportKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn checkers(sim: &mut Simulator) -> (DeliveryOracle, Watchdog) {
    let oracle = DeliveryOracle::new();
    let watchdog = Watchdog::new(WatchdogConfig::default());
    sim.set_probe(Box::new(Fanout::new(vec![
        oracle.probe(),
        watchdog.probe(),
        Box::new(FlightRecorder::default()),
    ])));
    (oracle, watchdog)
}

fn post_write(sim: &mut Simulator, host: NodeId, flow: FlowId, wr_id: u64, bytes: u64) {
    sim.post(host, flow, wr_id, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, bytes);
}

// ---------------------------------------------------------------------------
// PFC deadlock: the cyclic ring trips the detector, the tree never does.
// ---------------------------------------------------------------------------

/// Three switches wired in a clockwise ring (the canonical circular-buffer-
/// dependency topology PFC folklore warns about), two hosts each, with
/// deliberately tight PAUSE thresholds. Every flow crosses *two* ring hops,
/// so each ring link carries transit traffic whose egress is the next ring
/// link — the cyclic dependency.
#[test]
fn cyclic_lossless_ring_deadlocks_and_the_cycle_detector_names_the_ring() {
    let mut cfg = SwitchConfig::lossless(LoadBalance::Ecmp);
    cfg.pfc = Some(PfcConfig { xoff_bytes: 64 * 1024, xon_bytes: 48 * 1024 });
    let mut sim = Simulator::new(3);
    let sw: Vec<NodeId> = (0..3).map(|_| sim.add_switch(cfg)).collect();
    let mut hosts = Vec::new();
    let mut access = Vec::new();
    for &s in &sw {
        for _ in 0..2 {
            let h = sim.add_host();
            access.push((h, s, sim.connect_host_switch(h, s, 100.0, US)));
            hosts.push(h);
        }
    }
    // Clockwise ring cables; cw[s] is s's egress port toward switch s+1.
    let mut cw = [0usize; 3];
    for s in 0..3 {
        let (pa, _) = sim.connect_switches(sw[s], sw[(s + 1) % 3], 100.0, US);
        cw[s] = pa;
    }
    // Clockwise-only routing: local hosts via their access port, every
    // remote host via the ring.
    for s in 0..3 {
        for (i, &h) in hosts.iter().enumerate() {
            if i / 2 == s {
                let (_, _, port) = access[i];
                sim.switch_mut(sw[s]).routing.add_route(h, vec![port]);
            } else {
                sim.switch_mut(sw[s]).routing.add_route(h, vec![cw[s]]);
            }
        }
    }
    let (oracle, watchdog) = checkers(&mut sim);
    // Each host sends two ring hops clockwise: switch s's hosts target
    // switch (s+2)%3's hosts, so every ring link carries both final-hop
    // and transit traffic and the buffer dependency closes on itself.
    for (i, &src) in hosts.iter().enumerate() {
        let dst = hosts[(i + 4) % 6];
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair_opts(
            TransportKind::Gbn,
            CcKind::None,
            flow,
            src,
            dst,
            RunOpts::default(),
        );
        sim.install_endpoint(src, flow, tx);
        sim.install_endpoint(dst, flow, rx);
        post_write(&mut sim, src, flow, 0, 4 << 20);
    }
    let mut detected = None;
    let mut steps = 0u64;
    while sim.step().is_some() {
        steps += 1;
        if steps.is_multiple_of(512) {
            if let Some(cycle) = pfc_deadlock_cycle(&sim) {
                detected = Some((cycle, sim.now()));
                break;
            }
        }
        assert!(sim.now() < 200 * MS, "ring neither deadlocked nor drained");
    }
    let (mut cycle, at) = detected.expect("a cyclic lossless ring must PFC-deadlock");
    cycle.sort_unstable_by_key(|n| n.0);
    assert_eq!(cycle, sw, "the detected cycle should be exactly the three ring switches");
    // The fabric deadlock also shows up endpoint-side: give the run a
    // stall window and the liveness watchdog must flag it (either flavour
    // — GBN may or may not manage to push retransmissions into the wedge).
    sim.run_until(at + 8 * MS);
    let verdict = watchdog.check(at + 8 * MS, oracle.outstanding());
    assert!(
        matches!(verdict, Liveness::Stall { .. } | Liveness::Livelock { .. }),
        "a PFC deadlock must register as a liveness failure, got {verdict:?}"
    );
}

#[test]
fn lossless_tree_under_incast_pauses_but_never_cycles() {
    let mut cfg = SwitchConfig::lossless(LoadBalance::Ecmp);
    cfg.pfc = Some(PfcConfig { xoff_bytes: 64 * 1024, xon_bytes: 48 * 1024 });
    let mut sim = Simulator::new(4);
    let fan = 2;
    let topo = topology::two_switch_testbed(&mut sim, cfg, fan, 100.0, &[100.0], US, US);
    let (oracle, _) = checkers(&mut sim);
    // 2:1 incast onto one receiver: plenty of backpressure, zero cycles.
    for i in 0..fan {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair_opts(
            TransportKind::Gbn,
            CcKind::None,
            flow,
            topo.hosts[i],
            topo.hosts[fan],
            RunOpts::default(),
        );
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(topo.hosts[fan], flow, rx);
        post_write(&mut sim, topo.hosts[i], flow, 0, 2 << 20);
    }
    let mut saw_pause = false;
    let mut steps = 0u64;
    while sim.step().is_some() {
        steps += 1;
        if steps.is_multiple_of(512) {
            saw_pause |= !sim.pause_edges().is_empty();
            assert_eq!(
                pfc_deadlock_cycle(&sim),
                None,
                "a tree topology must never produce a pause cycle"
            );
        }
        assert!(sim.now() < 500 * MS, "incast failed to drain");
    }
    assert!(saw_pause, "the control is vacuous unless PFC actually engaged");
    assert_eq!(oracle.outstanding(), 0);
    oracle.final_check().expect("incast must deliver exactly once");
    let cons = sim.check_conservation(true);
    assert!(cons.is_ok(), "strict conservation violated: {:?}", cons.violations);
}

// ---------------------------------------------------------------------------
// The RACK-TLP livelock regression (DESIGN.md Finding 5), pinned via
// `RackConfig::broken_rto_restart` against the liveness watchdog.
// ---------------------------------------------------------------------------

/// Host 0 of the fan=1 two-switch testbed (`s1`=0, `s2`=1, hosts 2 and 3).
const RACK_SRC: NodeId = NodeId(2);
/// The cross cable, named from `s1`: port 1 (port 0 faces the host).
const RACK_CROSS: (NodeId, usize) = (NodeId(0), 1);
const RACK_MSG: u64 = 32 * 1024;

/// The livelock needs two ingredients: an initial hole (so the receiver
/// can never complete) and ACK starvation (so RACK's ACK-driven loss
/// detection stays blind and only the timers act). A rate-1.0 loss window
/// over the initial flight supplies the hole; the adversary holding every
/// ACK-class arrival at the sender for 50 ms supplies the starvation.
/// The fixed sender escapes through its RTO long before either watchdog
/// bound; the broken sender re-arms that RTO on every probe it sends and
/// spins on TLP probes forever.
fn rack_scenario() -> (FaultPlan, AdversaryProfile) {
    let (sw, port) = RACK_CROSS;
    let plan = FaultPlan::new(0xbad)
        .at(
            US,
            FaultEvent::SetLossModel { sw, port, model: Some(LossModel::Uniform { rate: 1.0 }) },
        )
        .at(50 * US, FaultEvent::SetLossModel { sw, port, model: None });
    // Hold every ACK-class arrival at the sender's NIC for 50 ms.
    (plan, AdversaryProfile::ack_delay((RACK_SRC, 0), 50 * MS))
}

struct RackOutcome {
    verdict: Liveness,
    report: String,
    completed: u64,
    ended_at: Nanos,
}

fn run_rack(broken: bool, plan: &FaultPlan, profile: &AdversaryProfile) -> RackOutcome {
    let mut sim = Simulator::new(11);
    let topo = topology::two_switch_testbed(
        &mut sim,
        SwitchConfig::lossy(LoadBalance::Ecmp),
        1,
        100.0,
        &[100.0],
        US,
        US,
    );
    let (src, dst) = (topo.hosts[0], topo.hosts[1]);
    assert_eq!(src, RACK_SRC);
    let (oracle, watchdog) = checkers(&mut sim);
    let plan = plan.clone().sorted();
    plan.validate(|s| sim.switch_port_count(s)).expect("rack plan is valid");
    FaultEngine::install(&mut sim, plan);
    Adversary::install(&mut sim, profile.clone(), 0xacde);
    let flow = FlowId(1);
    let rcfg = RackConfig { broken_rto_restart: broken, ..Default::default() };
    let cfg = FlowCfg::sender(flow, src, dst, DcpTag::NonDcp);
    let (tx, rx) = rack_pair(cfg, rcfg, Box::new(NoCc::default()), Placement::Virtual);
    sim.install_endpoint(src, flow, Box::new(tx));
    sim.install_endpoint(dst, flow, Box::new(rx));
    post_write(&mut sim, src, flow, 0, RACK_MSG);
    let mut next_check = 250 * US;
    while sim.step().is_some() {
        if sim.now() >= next_check {
            next_check = sim.now() + 250 * US;
            let verdict = watchdog.check(sim.now(), oracle.outstanding());
            if verdict != Liveness::Ok {
                return RackOutcome {
                    report: watchdog.report(&verdict, &sim),
                    verdict,
                    completed: oracle.completed(),
                    ended_at: sim.now(),
                };
            }
        }
        // The watchdog, not this guard, is the intended failure detector.
        assert!(sim.now() < 400 * MS, "harness hang guard tripped before the watchdog");
    }
    oracle.final_check().expect("drained rack run must be oracle-clean");
    let cons = sim.check_conservation(true);
    assert!(cons.is_ok(), "strict conservation violated: {:?}", cons.violations);
    RackOutcome {
        verdict: Liveness::Ok,
        report: String::new(),
        completed: oracle.completed(),
        ended_at: sim.now(),
    }
}

#[test]
fn broken_rack_rto_livelocks_where_the_fixed_build_recovers() {
    let (plan, profile) = rack_scenario();
    let fixed = run_rack(false, &plan, &profile);
    assert_eq!(fixed.verdict, Liveness::Ok, "fixed build must stay watchdog-quiet");
    assert_eq!(fixed.completed, 1, "fixed build must deliver the message");
    let broken = run_rack(true, &plan, &profile);
    assert!(
        matches!(broken.verdict, Liveness::Livelock { retx, .. } if retx >= 8),
        "the pre-fix RTO discipline must be classified as a livelock \
         (retx advancing, zero delivery), got {:?}",
        broken.verdict
    );
    assert_eq!(broken.completed, 0);
    // Flagged mid-run by the watchdog's virtual-time bound — well before
    // any harness timeout, with the flight recorder's story attached.
    assert!(
        broken.ended_at < 10 * MS,
        "watchdog should trip shortly after the 5 ms stall bound, not at {}",
        broken.ended_at
    );
    assert!(broken.report.contains("liveness watchdog tripped"), "{}", broken.report);
}

#[test]
fn livelock_repro_shrinks_to_at_most_three_events() {
    let (essential, profile) = rack_scenario();
    let (sw, _) = RACK_CROSS;
    let s2 = NodeId(1);
    // Pad the triggering plan with plausible-looking noise the shrinker
    // must strip: no-op clears/degrades and post-trip link flaps.
    let padded = essential
        .at(3 * MS, FaultEvent::SetLossModel { sw, port: 0, model: None })
        .at(10 * MS, FaultEvent::PauseStorm { sw: s2, port: 0, duration: 5 * US })
        .at(20 * MS, FaultEvent::LinkDegrade { sw: s2, port: 1, gbps: 100.0, delay: US })
        .at(300 * MS, FaultEvent::LinkDown { sw, port: 0 })
        .at(301 * MS, FaultEvent::LinkUp { sw, port: 0 })
        .sorted();
    assert_eq!(padded.events.len(), 7);
    let trips =
        |p: &FaultPlan| matches!(run_rack(true, p, &profile).verdict, Liveness::Livelock { .. });
    let shrunk = shrink_plan(&padded, trips);
    assert!(
        shrunk.events.len() <= 3,
        "ddmin must reduce the 7-event plan to ≤ 3 events, kept {}",
        shrunk.events.len()
    );
    assert!(trips(&shrunk), "the shrunken plan must still reproduce the livelock");
    assert!(
        shrunk.events.iter().all(|t| matches!(t.event, FaultEvent::SetLossModel { .. })),
        "only the loss window is essential: {shrunk:?}"
    );
    // The CI artifact format: a self-contained, replayable repro. Shrink
    // it under the *differential* criterion — broken build livelocks AND
    // fixed build recovers — which is the bug's actual signature. (A bare
    // permanent-loss plan livelocks either build, so the broken-only
    // criterion above legitimately shrinks past the window; the
    // differential one must keep the loss *window* and the ACK hold.)
    let differential = |p: &FaultPlan, prof: &AdversaryProfile| {
        matches!(run_rack(true, p, prof).verdict, Liveness::Livelock { .. }) && {
            let fixed = run_rack(false, p, prof);
            fixed.verdict == Liveness::Ok && fixed.completed == 1
        }
    };
    let repro = Repro { plan: padded, profile: profile.clone(), adversary_seed: 0xacde };
    let repro = shrink_repro(&repro, |r| differential(&r.plan, &r.profile));
    assert!(
        repro.plan.events.len() <= 3,
        "differential shrink must also land ≤ 3 events, kept {}",
        repro.plan.events.len()
    );
    assert!(
        (repro.profile.delay_prob - 1.0).abs() < f64::EPSILON,
        "the ACK hold is load-bearing for the differential repro and must survive ablation"
    );
    let loaded = Repro::load(&repro.save()).expect("repro JSON must round-trip");
    assert_eq!(loaded, repro);
    assert!(
        differential(&loaded.plan, &loaded.profile),
        "the saved artifact must replay the failure"
    );
}

// ---------------------------------------------------------------------------
// DESIGN.md Finding 2: losing the final eMSN ACK must not strand the flow
// (coarse timeout + re-ACK-on-stale) nor double-complete it.
// ---------------------------------------------------------------------------

struct DcpOutcome {
    recv_completes: u64,
    last_recv_at: Nanos,
    send_complete_at: Nanos,
    timeouts: u64,
    retx: u64,
}

fn run_dcp_final_ack(plan: Option<FaultPlan>) -> DcpOutcome {
    let mut sim = Simulator::new(7);
    let topo = topology::two_switch_testbed(
        &mut sim,
        dcp_switch_config(LoadBalance::Ecmp, 4),
        1,
        100.0,
        &[100.0],
        US,
        US,
    );
    let (oracle, _) = checkers(&mut sim);
    if let Some(plan) = plan {
        let plan = plan.sorted();
        plan.validate(|s| sim.switch_port_count(s)).expect("finding-2 plan is valid");
        FaultEngine::install(&mut sim, plan);
    }
    let flow = FlowId(1);
    let mut opts = RunOpts::default();
    opts.dcp.coarse_timeout = MS;
    let (tx, rx) = endpoint_pair_opts(
        TransportKind::Dcp,
        CcKind::None,
        flow,
        topo.hosts[0],
        topo.hosts[1],
        opts,
    );
    sim.install_endpoint(topo.hosts[0], flow, tx);
    sim.install_endpoint(topo.hosts[1], flow, rx);
    post_write(&mut sim, topo.hosts[0], flow, 0, 256 * 1024);
    let mut out = DcpOutcome {
        recv_completes: 0,
        last_recv_at: 0,
        send_complete_at: 0,
        timeouts: 0,
        retx: 0,
    };
    while sim.step().is_some() {
        sim.for_each_completion(|c| match c.kind {
            CompletionKind::RecvComplete => {
                out.recv_completes += 1;
                out.last_recv_at = out.last_recv_at.max(c.at);
            }
            CompletionKind::SendComplete => out.send_complete_at = c.at,
        });
        assert!(sim.now() < 200 * MS, "finding-2 run failed to drain");
    }
    oracle.final_check().expect("delivery must be exactly-once");
    let cons = sim.check_conservation(true);
    assert!(cons.is_ok(), "strict conservation violated: {:?}", cons.violations);
    let eps = sim.all_endpoint_stats();
    out.timeouts = eps.timeouts;
    out.retx = eps.retx_pkts;
    out
}

#[test]
fn dropped_final_emsn_ack_recovers_via_coarse_timeout_exactly_once() {
    // Calibrate: where does the final eMSN ACK fly on a clean run? It is
    // emitted at receiver completion and crosses the inter-switch cable
    // within a couple of link delays.
    let clean = run_dcp_final_ack(None);
    assert_eq!(clean.recv_completes, 1);
    assert_eq!(clean.timeouts, 0, "the clean run must not need the coarse timeout");
    // A rate-1.0 window on the cross cable opening exactly at receiver
    // completion eats every ACK crossing in the next 8 µs — the final
    // eMSN ACK included. All data is already across; nothing else flies.
    let (sw, port) = RACK_CROSS;
    let plan = FaultPlan::new(0xf2)
        .at(
            clean.last_recv_at,
            FaultEvent::SetLossModel { sw, port, model: Some(LossModel::Uniform { rate: 1.0 }) },
        )
        .at(clean.last_recv_at + 8 * US, FaultEvent::SetLossModel { sw, port, model: None });
    let faulted = run_dcp_final_ack(Some(plan));
    // The receiver completed once, on time, and never re-completed when
    // the whole-message resend arrived (the tracker judges it stale and
    // re-ACKs instead — exactly-once also asserted by the oracle).
    assert_eq!(faulted.recv_completes, 1);
    assert_eq!(faulted.last_recv_at, clean.last_recv_at);
    // The sender was stranded until the coarse timeout resent the message
    // and the stale re-ACK retired it.
    assert!(faulted.timeouts >= 1, "the coarse timeout must fire");
    assert!(faulted.retx > clean.retx, "the whole-message resend must hit the wire");
    assert!(
        faulted.send_complete_at > clean.send_complete_at + MS / 2,
        "sender completion must wait for the coarse timeout: clean {} vs faulted {}",
        clean.send_complete_at,
        faulted.send_complete_at
    );
}

// ---------------------------------------------------------------------------
// Determinism: adversarial runs are byte-identical across sweep threads.
// ---------------------------------------------------------------------------

fn adversary_digest((kind, pname): (TransportKind, &'static str)) -> u64 {
    let profile = match pname {
        "duplicate" => AdversaryProfile::duplicate(),
        "reorder" => AdversaryProfile::reorder(),
        "delay-jitter" => AdversaryProfile::delay_jitter(),
        other => panic!("unknown profile {other}"),
    };
    let cfg = if kind == TransportKind::Dcp {
        dcp_switch_config(LoadBalance::AdaptiveRouting, 6)
    } else {
        SwitchConfig::lossy(LoadBalance::Ecmp)
    };
    let mut sim = Simulator::new(5);
    let fan = 2;
    let topo = topology::two_switch_testbed(&mut sim, cfg, fan, 100.0, &[100.0; 2], US, US);
    let (oracle, _) = checkers(&mut sim);
    Adversary::install(&mut sim, profile, 0x7157);
    for i in 0..fan {
        let flow = FlowId(i as u32 + 1);
        let mut opts = RunOpts::default();
        opts.dcp.coarse_timeout = MS;
        let (tx, rx) =
            endpoint_pair_opts(kind, CcKind::None, flow, topo.hosts[i], topo.hosts[fan + i], opts);
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(topo.hosts[fan + i], flow, rx);
        for m in 0..2 {
            post_write(&mut sim, topo.hosts[i], flow, m, 128 * 1024);
        }
    }
    while sim.step().is_some() {
        assert!(sim.now() < 2_000 * MS, "{kind:?}/{pname}: failed to drain");
    }
    oracle.final_check().unwrap_or_else(|e| panic!("{kind:?}/{pname}: oracle violations:\n{e}"));
    let cons = sim.check_conservation(true);
    assert!(cons.is_ok(), "{kind:?}/{pname}: strict conservation violated: {:?}", cons.violations);
    let net = sim.net_stats();
    let eps = sim.all_endpoint_stats();
    [
        oracle.posted(),
        oracle.completed(),
        eps.pkts_received,
        eps.retx_pkts,
        net.dup_data_injected,
        net.dup_ho_injected,
        sim.now(),
    ]
    .iter()
    .fold(FNV_OFFSET, |h, &v| fnv_u64(h, v))
}

#[test]
fn adversarial_runs_are_identical_across_sweep_threads() {
    let points: Vec<(TransportKind, &'static str)> = vec![
        (TransportKind::Dcp, "duplicate"),
        (TransportKind::Dcp, "reorder"),
        (TransportKind::Irn, "duplicate"),
        (TransportKind::Gbn, "delay-jitter"),
        (TransportKind::RackTlp, "reorder"),
    ];
    let serial = sweep_with_threads(points.clone(), 1, adversary_digest);
    let parallel = sweep_with_threads(points, 4, adversary_digest);
    assert_eq!(serial, parallel, "adversary streams must never touch shared RNG state");
}
