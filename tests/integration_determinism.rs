//! Determinism regression tests: the same seed must produce a
//! byte-identical packet trace — here digested as every completion the
//! simulator emits (host, flow, wr_id, kind, bytes, time) plus the final
//! fabric counters, event count and clock — across repeated runs and
//! across sweep thread counts.

use dcp_bench::sweep_with_threads;
use dcp_core::dcp_switch_config;
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// A 4-to-1 DCP incast over adaptive routing — trimming, HO recovery and
/// RNG-driven port choices all feed the trace. Returns an FNV-1a digest
/// of the completion stream, the `NetStats` debug rendering, the event
/// count and the final clock.
fn run_digest(seed: u64) -> u64 {
    let fan_in = 4;
    let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, fan_in + 2);
    let mut sim = Simulator::new(seed);
    let topo = topology::two_switch_testbed(&mut sim, cfg, fan_in, 100.0, &[25.0; 2], US, US);
    let victim = topo.hosts[fan_in];
    for i in 0..fan_in {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, topo.hosts[i], victim);
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(victim, flow, rx);
        for m in 0..8u64 {
            sim.post(
                topo.hosts[i],
                flow,
                m,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                256 * 1024,
            );
        }
    }
    let mut h = FNV_OFFSET;
    while sim.now() < SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            h = fnv_u64(h, c.host.0 as u64);
            h = fnv_u64(h, c.flow.0 as u64);
            h = fnv_u64(h, c.wr_id);
            h = fnv_u64(h, matches!(c.kind, CompletionKind::RecvComplete) as u64);
            h = fnv_u64(h, c.bytes);
            h = fnv_u64(h, c.imm as u64);
            h = fnv_u64(h, c.at);
        });
    }
    h = fnv_bytes(h, format!("{:?}", sim.net_stats()).as_bytes());
    h = fnv_u64(h, sim.events_processed());
    fnv_u64(h, sim.now())
}

#[test]
fn same_seed_identical_digest_repeated_runs() {
    assert_eq!(run_digest(5), run_digest(5), "same seed must replay byte-identically");
    assert_eq!(run_digest(17), run_digest(17));
    assert_ne!(run_digest(5), run_digest(17), "digest must actually depend on the trace");
}

#[test]
fn net_stats_identical_repeated_runs() {
    let stats = |seed: u64| {
        let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, 6);
        let mut sim = Simulator::new(seed);
        let topo = topology::two_switch_testbed(&mut sim, cfg, 2, 100.0, &[25.0; 2], US, US);
        for i in 0..2 {
            let flow = FlowId(i as u32 + 1);
            let (tx, rx) = endpoint_pair(
                TransportKind::Dcp,
                CcKind::None,
                flow,
                topo.hosts[i],
                topo.hosts[2 + i],
            );
            sim.install_endpoint(topo.hosts[i], flow, tx);
            sim.install_endpoint(topo.hosts[2 + i], flow, rx);
            sim.post(
                topo.hosts[i],
                flow,
                0,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                1 << 20,
            );
        }
        sim.run_to_quiescence(SEC);
        format!("{:?}", sim.net_stats())
    };
    assert_eq!(stats(3), stats(3), "NetStats must be byte-identical for the same seed");
}

#[test]
fn sweep_digest_identical_across_thread_counts() {
    let seeds: Vec<u64> = (1..=6).collect();
    let serial = sweep_with_threads(seeds.clone(), 1, run_digest);
    let parallel = sweep_with_threads(seeds, 8, run_digest);
    assert_eq!(serial, parallel, "DCP_THREADS must not change any per-run result");
}
