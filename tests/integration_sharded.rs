//! Sharded-engine determinism matrix.
//!
//! The conservative-lookahead engine's contract, pinned here:
//!
//! 1. **One shard is the serial engine.** An unsharded run of the reference
//!    scenario reproduces the digests captured on the pre-sharding engine,
//!    byte for byte (hardcoded below) — plain, fault-injected and
//!    adversarial.
//! 2. **Worker threads are invisible.** With a fixed shard count, the
//!    digest is identical whether windows run on one worker or four, and
//!    identical across repeats — including under a fault plan and a wire
//!    adversary, whose RNG streams must not be perturbed by the partition.
//! 3. **Sharded runs still conserve.** A partitioned run drains to
//!    quiescence and passes the strict conservation identities.
//!
//! The scenario is the 2-spine/4-leaf CLOS with cross-leaf DCP flows under
//! adaptive routing: trimming, header-only recovery and RNG-driven port
//! choices all feed the trace.

use dcp_check::adversary::{Adversary, AdversaryProfile};
use dcp_core::dcp_switch_config;
use dcp_faults::engine::FaultEngine;
use dcp_faults::loss::LossModel;
use dcp_faults::plan::{FaultEvent, FaultPlan};
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

/// Digests of the reference scenario captured on the serial engine before
/// sharding existed (PR 5). Rule 1: these must never change.
const GOLDEN_PLAIN: u64 = 0x48f926afeb0f3883;
const GOLDEN_FAULTED: u64 = 0xb27fc2975b9ba620;
const GOLDEN_ADVERSARY: u64 = 0x46228f1527b7e1c0;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

#[derive(Clone, Copy)]
enum Mode {
    Plain,
    Faulted,
    Adversarial,
}

/// Runs the reference scenario with an explicit engine configuration and
/// digests every completion, the fabric counters, the event count and the
/// final clock. `shards = 1` leaves the engine unsharded.
fn run_digest(seed: u64, mode: Mode, shards: usize, workers: usize) -> u64 {
    let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, 6);
    let mut sim = Simulator::new(seed);
    sim.disable_auto_partition();
    let topo = topology::clos(&mut sim, cfg, 2, 4, 2, 100.0, 100.0, US, US);
    if shards > 1 {
        assert!(sim.partition(&topo, shards), "reference clos must partition");
        assert_eq!(sim.shard_count(), shards);
        sim.set_workers(workers);
    }
    match mode {
        Mode::Plain => {}
        Mode::Faulted => {
            let plan = FaultPlan::new(0xFA)
                .with_loss_on(&[(topo.leaves[1], 2)], LossModel::Ber { ber: 2e-7 })
                .at(50 * US, FaultEvent::LinkDown { sw: topo.leaves[0], port: 3 })
                .at(150 * US, FaultEvent::LinkUp { sw: topo.leaves[0], port: 3 })
                .sorted();
            FaultEngine::install(&mut sim, plan);
        }
        Mode::Adversarial => {
            Adversary::install(&mut sim, AdversaryProfile::duplicate(), 0xAD);
        }
    }
    for i in 0..4usize {
        let flow = FlowId(i as u32 + 1);
        let (src, dst) = (topo.hosts[i], topo.hosts[(i + 3) % 8]);
        let (tx, rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, src, dst);
        sim.install_endpoint(src, flow, tx);
        sim.install_endpoint(dst, flow, rx);
        for m in 0..4u64 {
            sim.post(
                src,
                flow,
                m,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                128 * 1024,
            );
        }
    }
    let mut h = FNV_OFFSET;
    while sim.now() < SEC {
        if sim.advance().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            h = fnv_u64(h, c.host.0 as u64);
            h = fnv_u64(h, c.flow.0 as u64);
            h = fnv_u64(h, c.wr_id);
            h = fnv_u64(h, matches!(c.kind, CompletionKind::RecvComplete) as u64);
            h = fnv_u64(h, c.bytes);
            h = fnv_u64(h, c.imm as u64);
            h = fnv_u64(h, c.at);
        });
    }
    h = fnv_bytes(h, format!("{:?}", sim.net_stats()).as_bytes());
    h = fnv_u64(h, sim.events_processed());
    fnv_u64(h, sim.now())
}

#[test]
fn one_shard_reproduces_presharding_goldens() {
    assert_eq!(run_digest(11, Mode::Plain, 1, 1), GOLDEN_PLAIN);
    assert_eq!(run_digest(11, Mode::Faulted, 1, 1), GOLDEN_FAULTED);
    assert_eq!(run_digest(11, Mode::Adversarial, 1, 1), GOLDEN_ADVERSARY);
}

#[test]
fn sharded_digest_independent_of_worker_count() {
    for (mode, name) in
        [(Mode::Plain, "plain"), (Mode::Faulted, "faulted"), (Mode::Adversarial, "adversarial")]
    {
        let w1 = run_digest(11, mode, 4, 1);
        let w4 = run_digest(11, mode, 4, 4);
        assert_eq!(w1, w4, "{name}: 4-shard digest must not depend on worker count");
        assert_eq!(w1, run_digest(11, mode, 4, 1), "{name}: 4-shard digest must repeat");
        assert_eq!(w4, run_digest(11, mode, 4, 4), "{name}: 4-shard digest must repeat");
    }
}

#[test]
fn sharded_digest_depends_on_trace_not_noise() {
    // Different seeds must still diverge when sharded (the digest is not
    // collapsing to a constant), and 2-shard vs 4-shard cuts are allowed to
    // differ (per-shard RNG streams) but must each be self-stable.
    let a = run_digest(11, Mode::Plain, 4, 4);
    let b = run_digest(12, Mode::Plain, 4, 4);
    assert_ne!(a, b, "digest must depend on the seed");
    let two = run_digest(11, Mode::Plain, 2, 2);
    assert_eq!(two, run_digest(11, Mode::Plain, 2, 1));
}

#[test]
fn sharded_run_drains_and_conserves() {
    let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, 6);
    let mut sim = Simulator::new(21);
    sim.disable_auto_partition();
    let topo = topology::clos(&mut sim, cfg, 2, 4, 2, 100.0, 100.0, US, US);
    assert!(sim.partition(&topo, 4));
    sim.set_workers(4);
    for i in 0..4usize {
        let flow = FlowId(i as u32 + 1);
        let (src, dst) = (topo.hosts[i], topo.hosts[(i + 3) % 8]);
        let (tx, rx) = endpoint_pair(TransportKind::Dcp, CcKind::None, flow, src, dst);
        sim.install_endpoint(src, flow, tx);
        sim.install_endpoint(dst, flow, rx);
        sim.post(src, flow, 0, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, 512 * 1024);
    }
    assert!(sim.run_to_quiescence(SEC), "sharded run must drain");
    let c = sim.check_conservation(true);
    assert!(c.is_ok(), "sharded conservation violated: {:?}", c.violations);
}

#[test]
fn partition_refuses_degenerate_cuts() {
    let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, 6);
    let mut sim = Simulator::new(1);
    sim.disable_auto_partition();
    let topo = topology::clos(&mut sim, cfg, 2, 4, 2, 100.0, 100.0, US, US);
    assert!(!sim.partition(&topo, 1), "1 shard is not a partition");
    assert!(sim.partition(&topo, 4));
    assert!(!sim.partition(&topo, 4), "re-partitioning must refuse");
    assert_eq!(sim.shard_count(), 4);
    assert_eq!(sim.lookahead_ns(), US, "lookahead is the min cross-shard delay");
}
