//! Cross-scheme shape regressions: the relative orderings the paper's
//! evaluation establishes must hold in the reproduction.

use dcp_core::dcp_switch_config;
use dcp_netsim::packet::FlowId;
use dcp_netsim::switch::SwitchConfig;
use dcp_netsim::time::{Nanos, SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

/// Streams 8 MB through a forced-loss dumbbell; returns goodput in Gbps.
fn goodput(kind: TransportKind, loss: f64, trimming: bool) -> f64 {
    let mut cfg = if trimming {
        dcp_switch_config(LoadBalance::Ecmp, 16)
    } else {
        SwitchConfig::lossy(LoadBalance::Ecmp)
    };
    cfg.forced_loss_rate = loss;
    let mut sim = Simulator::new(5);
    let topo = topology::two_switch_testbed(&mut sim, cfg, 1, 100.0, &[100.0], US, US);
    let (a, b) = (topo.hosts[0], topo.hosts[1]);
    let flow = FlowId(1);
    let (tx, rx) = endpoint_pair(kind, CcKind::Bdp { gbps: 100.0, rtt: 12 * US }, flow, a, b);
    sim.install_endpoint(a, flow, tx);
    sim.install_endpoint(b, flow, rx);
    let total: u64 = 8 << 20;
    for i in 0..8u64 {
        sim.post(a, flow, i, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, 1 << 20);
    }
    let mut done = 0;
    let mut last: Nanos = 0;
    while done < 8 && sim.now() < 120 * SEC {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                done += 1;
                last = c.at;
            }
        });
    }
    assert_eq!(done, 8, "{kind:?} at loss {loss}");
    total as f64 * 8.0 / last as f64
}

#[test]
fn fig17_ordering_dcp_rack_irn_timeout() {
    // Fig. 17 at 2% loss: DCP > RACK-TLP > IRN > timeout-only.
    let dcp = goodput(TransportKind::Dcp, 0.02, true);
    let rack = goodput(TransportKind::RackTlp, 0.02, false);
    let irn = goodput(TransportKind::Irn, 0.02, false);
    let timeout = goodput(TransportKind::TimeoutOnly, 0.02, false);
    assert!(dcp > rack, "DCP {dcp:.1} vs RACK {rack:.1}");
    assert!(rack > irn, "RACK {rack:.1} vs IRN {irn:.1}");
    assert!(irn > timeout, "IRN {irn:.1} vs timeout {timeout:.1}");
}

#[test]
fn fig10_dcp_degrades_gracefully_gbn_collapses() {
    // Fig. 10's shape: at 5% loss GBN goodput collapses by an order of
    // magnitude while DCP stays near line rate.
    let dcp = goodput(TransportKind::Dcp, 0.05, true);
    let gbn = goodput(TransportKind::Gbn, 0.05, false);
    assert!(dcp > 50.0, "DCP at 5% loss: {dcp:.1} Gbps");
    assert!(dcp > 3.0 * gbn, "DCP {dcp:.1} must be multiples of GBN {gbn:.1}");
}

#[test]
fn clean_fabric_all_schemes_near_line_rate() {
    for kind in [TransportKind::Dcp, TransportKind::Gbn, TransportKind::Irn, TransportKind::RackTlp]
    {
        let g = goodput(kind, 0.0, kind == TransportKind::Dcp);
        assert!(g > 80.0, "{kind:?} clean goodput {g:.1}");
    }
}
