//! Whole-stack integration: DCP endpoints + DCP-Switch policy + analytics
//! agreeing with the fabric, across crates.

use dcp_analytic::wrr;
use dcp_core::{dcp_pair, dcp_switch_config, DcpConfig, RetransMode};
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{Nanos, SEC, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::headers::DcpTag;
use dcp_rdma::qp::WorkReqOp;
use dcp_transport::cc::{Dcqcn, DcqcnConfig, NoCc};
use dcp_transport::common::{FlowCfg, Placement};

fn drive_to(sim: &mut Simulator, want: usize, deadline: Nanos) -> (usize, Nanos) {
    let mut done = 0;
    let mut last = 0;
    while done < want && sim.now() < deadline {
        if sim.step().is_none() {
            break;
        }
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                done += 1;
                last = c.at;
            }
        });
    }
    (done, last)
}

#[test]
fn wrr_weight_from_analytics_keeps_control_plane_lossless() {
    // Program the fabric with the §4.2 analytical weight for its actual
    // radix and verify zero HO losses under a radix-filling incast.
    let fan_in = 8;
    let n_ports = fan_in + 1 + 1; // hosts + cross + margin
    let w = wrr::effective_wrr_weight(n_ports, dcp_rdma::MTU, 8.0);
    let mut cfg = dcp_switch_config(LoadBalance::Ecmp, n_ports);
    cfg.ctrl_weight = w;
    cfg.data_q_threshold = 8 * 1024;
    let mut sim = Simulator::new(1);
    let topo = topology::two_switch_testbed(&mut sim, cfg, fan_in, 100.0, &[100.0], US, US);
    let victim = topo.hosts[fan_in];
    for i in 0..fan_in {
        let flow = FlowId(i as u32 + 1);
        let fc = FlowCfg::sender(flow, topo.hosts[i], victim, DcpTag::Data);
        let (tx, rx) =
            dcp_pair(fc, DcpConfig::default(), Box::new(NoCc::default()), Placement::Virtual);
        sim.install_endpoint(topo.hosts[i], flow, Box::new(tx));
        sim.install_endpoint(victim, flow, Box::new(rx));
        sim.post(
            topo.hosts[i],
            flow,
            0,
            WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
            1 << 20,
        );
    }
    let (done, _) = drive_to(&mut sim, fan_in, 30 * SEC);
    assert_eq!(done, fan_in);
    let ns = sim.net_stats();
    assert!(ns.trims > 1000, "incast must trim heavily, got {}", ns.trims);
    assert_eq!(ns.ho_drops, 0, "analytical weight keeps the control plane lossless");
}

#[test]
fn dcqcn_integration_reduces_retransmission_pressure() {
    // §6.3: DCP alone floods retransmissions under incast; DCP+DCQCN tames
    // them. Compare total retransmitted packets.
    let run = |with_cc: bool| {
        let mut cfg = dcp_switch_config(LoadBalance::Ecmp, 16);
        cfg.data_q_threshold = 32 * 1024;
        cfg.ecn = Some(dcp_netsim::EcnConfig { kmin: 8 * 1024, kmax: 24 * 1024, pmax: 0.2 });
        let mut sim = Simulator::new(2);
        let fan_in = 8;
        let topo = topology::two_switch_testbed(&mut sim, cfg, fan_in, 100.0, &[100.0], US, US);
        let victim = topo.hosts[fan_in];
        for i in 0..fan_in {
            let flow = FlowId(i as u32 + 1);
            let fc = FlowCfg::sender(flow, topo.hosts[i], victim, DcpTag::Data);
            let cc: Box<dyn dcp_transport::cc::CongestionControl> = if with_cc {
                Box::new(Dcqcn::new(DcqcnConfig::default()))
            } else {
                Box::new(NoCc::default())
            };
            let (tx, rx) = dcp_pair(fc, DcpConfig::default(), cc, Placement::Virtual);
            sim.install_endpoint(topo.hosts[i], flow, Box::new(tx));
            sim.install_endpoint(victim, flow, Box::new(rx));
            sim.post(
                topo.hosts[i],
                flow,
                0,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                2 << 20,
            );
        }
        let (done, _) = drive_to(&mut sim, fan_in, 60 * SEC);
        assert_eq!(done, fan_in, "with_cc={with_cc}");
        (0..fan_in)
            .map(|i| sim.endpoint_stats(topo.hosts[i], FlowId(i as u32 + 1)).retx_pkts)
            .sum::<u64>()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with * 2 < without,
        "DCQCN must at least halve retransmission pressure: {with} vs {without}"
    );
}

#[test]
fn per_ho_mode_is_pcie_bound_batched_is_not() {
    // The §4.3 challenge-vs-solution ablation end-to-end: with heavy forced
    // loss, the per-HO strawman recovers at PCIe-bound throughput while the
    // batched design keeps goodput high.
    let run = |mode: RetransMode| {
        let mut cfg = dcp_switch_config(LoadBalance::Ecmp, 16);
        cfg.forced_loss_rate = 0.05;
        let mut sim = Simulator::new(3);
        let topo = topology::two_switch_testbed(&mut sim, cfg, 1, 100.0, &[100.0], US, US);
        let (a, b) = (topo.hosts[0], topo.hosts[1]);
        let flow = FlowId(1);
        let fc = FlowCfg::sender(flow, a, b, DcpTag::Data);
        let dcfg = DcpConfig { retrans_mode: mode, ..Default::default() };
        let (tx, rx) = dcp_pair(fc, dcfg, Box::new(NoCc::default()), Placement::Virtual);
        sim.install_endpoint(a, flow, Box::new(tx));
        sim.install_endpoint(b, flow, Box::new(rx));
        for i in 0..8u64 {
            sim.post(a, flow, i, WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 }, 1 << 20);
        }
        let (done, last) = drive_to(&mut sim, 8, 60 * SEC);
        assert_eq!(done, 8, "{mode:?}");
        (8u64 << 20) as f64 * 8.0 / last as f64
    };
    let batched = run(RetransMode::Batched);
    let per_ho = run(RetransMode::PerHo);
    assert!(
        batched > per_ho,
        "batched fetch must outperform per-HO fetches: {batched:.1} vs {per_ho:.1} Gbps"
    );
}

#[test]
fn verbs_layer_round_trip() {
    // The dcp-rdma verbs surface works standalone: post, segment, complete.
    use dcp_rdma::qp::{CqeKind, Qpn};
    use dcp_rdma::verbs::QueuePair;
    let mut qp = QueuePair::new(Qpn(1), Qpn(2));
    qp.register_memory(0x1000, 1 << 20);
    let msn = qp
        .post_send(42, WorkReqOp::Write { remote_addr: 0x9000, rkey: 3 }, 0x1000, 4096, true)
        .unwrap();
    assert_eq!(msn, 0);
    let wqe = *qp.sq.by_msn(0).unwrap();
    let pkts = dcp_rdma::segment::segment_message(&wqe, dcp_rdma::MTU);
    assert_eq!(pkts.len(), 4);
    qp.push_cqe(dcp_rdma::qp::Cqe {
        wr_id: 42,
        qpn: Qpn(1),
        kind: CqeKind::SendComplete,
        byte_len: 4096,
        imm: 0,
    });
    let done = qp.poll_cq(8);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].wr_id, 42);
}
