//! Fault-plane integration tests: every fault type must drain to
//! quiescence with strict conservation, same-plan runs must be
//! byte-identical regardless of sweep thread count (per-link RNG streams
//! never touch the simulator RNG), a JSON round-tripped plan must replay
//! the exact same trace, and adaptive routing must route *around* a downed
//! uplink that blackholes static ECMP until the repair.

use dcp_bench::sweep_with_threads;
use dcp_core::dcp_switch_config;
use dcp_faults::{FaultEngine, FaultEvent, FaultPlan, LossModel};
use dcp_netsim::packet::FlowId;
use dcp_netsim::time::{Nanos, MS, US};
use dcp_netsim::{topology, CompletionKind, LoadBalance, Simulator};
use dcp_rdma::qp::WorkReqOp;
use dcp_workloads::{endpoint_pair, CcKind, TransportKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// The fault scenarios under test, one per mechanism the plane exposes.
/// Each plan targets the first cross cable of a 2-sender two-switch
/// testbed: `s1` port 2 (ports 0..2 are hosts), repaired or cleared at
/// 2 ms so the run always has a path back to health.
fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    let s1 = dcp_netsim::packet::NodeId(0);
    let s2 = dcp_netsim::packet::NodeId(1);
    let cross = 2; // first post-host port on s1
    vec![
        ("ber", FaultPlan::new(0xbe7).with_loss_on(&[(s1, cross)], LossModel::Ber { ber: 1e-5 })),
        (
            "bursty",
            FaultPlan::new(0xb57).with_loss_on(&[(s1, cross)], LossModel::bursty(0.001, 0.1)),
        ),
        (
            "uniform-then-clear",
            FaultPlan::new(0x0ff)
                .at(
                    200 * US,
                    FaultEvent::SetLossModel {
                        sw: s1,
                        port: cross,
                        model: Some(LossModel::Uniform { rate: 0.05 }),
                    },
                )
                .at(2 * MS, FaultEvent::SetLossModel { sw: s1, port: cross, model: None }),
        ),
        (
            "link-flap",
            FaultPlan::new(0xf1a)
                .at(200 * US, FaultEvent::LinkDown { sw: s1, port: cross })
                .at(2 * MS, FaultEvent::LinkUp { sw: s1, port: cross }),
        ),
        (
            "degrade",
            FaultPlan::new(0xde6)
                .at(
                    200 * US,
                    FaultEvent::LinkDegrade { sw: s1, port: cross, gbps: 10.0, delay: 5 * US },
                )
                .at(
                    2 * MS,
                    FaultEvent::LinkDegrade { sw: s1, port: cross, gbps: 100.0, delay: US },
                ),
        ),
        (
            "switch-fail",
            FaultPlan::new(0x5f0)
                .at(200 * US, FaultEvent::SwitchFail { sw: s2 })
                .at(2 * MS, FaultEvent::SwitchRecover { sw: s2 }),
        ),
        (
            "pause-storm",
            FaultPlan::new(0x9a5)
                .at(200 * US, FaultEvent::PauseStorm { sw: s1, port: 0, duration: MS }),
        ),
    ]
}

/// Runs 2 DCP flows across the faulted testbed to quiescence; asserts
/// every message completes and the strict conservation identities hold,
/// then returns the completion-stream digest.
fn run_faulted(label: &str, plan: FaultPlan) -> u64 {
    let fan = 2;
    let cfg = dcp_switch_config(LoadBalance::AdaptiveRouting, fan + 2);
    let mut sim = Simulator::new(7);
    let topo = topology::two_switch_testbed(&mut sim, cfg, fan, 100.0, &[100.0; 2], US, US);
    FaultEngine::install(&mut sim, plan.sorted());
    let msgs = 4u64;
    for i in 0..fan {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair(
            TransportKind::Dcp,
            CcKind::None,
            flow,
            topo.hosts[i],
            topo.hosts[fan + i],
        );
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(topo.hosts[fan + i], flow, rx);
        for m in 0..msgs {
            sim.post(
                topo.hosts[i],
                flow,
                m,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                256 * 1024,
            );
        }
    }
    let mut h = FNV_OFFSET;
    let mut done = 0u64;
    while sim.step().is_some() {
        sim.for_each_completion(|c| {
            h = fnv_u64(h, c.host.0 as u64);
            h = fnv_u64(h, c.flow.0 as u64);
            h = fnv_u64(h, c.wr_id);
            h = fnv_u64(h, c.bytes);
            h = fnv_u64(h, c.at);
            if c.kind == CompletionKind::RecvComplete {
                done += 1;
            }
        });
        assert!(sim.now() < 2_000 * MS, "{label}: fabric failed to drain");
    }
    assert_eq!(done, fan as u64 * msgs, "{label}: every message must complete");
    let cons = sim.check_conservation(true);
    assert!(cons.is_ok(), "{label}: strict conservation violated: {:?}", cons.violations);
    h = fnv_bytes(h, format!("{:?}", sim.net_stats()).as_bytes());
    h = fnv_u64(h, sim.events_processed());
    fnv_u64(h, sim.now())
}

#[test]
fn every_fault_type_drains_with_strict_conservation() {
    for (label, plan) in scenarios() {
        run_faulted(label, plan);
    }
}

#[test]
fn fault_digests_are_identical_across_sweep_thread_counts() {
    let serial = sweep_with_threads(scenarios(), 1, |(label, plan)| run_faulted(label, plan));
    let parallel = sweep_with_threads(scenarios(), 4, |(label, plan)| run_faulted(label, plan));
    assert_eq!(serial, parallel, "fault traces must not depend on sweep threading");
}

#[test]
fn json_round_tripped_plan_replays_identically() {
    for (label, plan) in scenarios() {
        let reloaded = FaultPlan::load(&plan.save()).expect("plan survives its own JSON");
        assert_eq!(
            run_faulted(label, plan),
            run_faulted(label, reloaded),
            "{label}: a saved+loaded plan must replay the exact same trace"
        );
    }
}

/// One route-around run on a dual-homed two-switch testbed (two parallel
/// cross cables): 4 DCP flows s1→s2, cross cable 0 goes down mid-transfer
/// and comes back at `link_up`. Both ends of the dead cable are *local*
/// ports of the two switches, so adaptive routing can observe the failure
/// (the dead port's queue only grows) in both directions — the scenario AR
/// genuinely handles, unlike a failure two hops away, which only a routing
/// protocol can see. Returns (last completion time, completed messages).
fn run_route_around(lb: LoadBalance, link_up: Nanos) -> (Nanos, u64) {
    let fan = 4;
    let cfg = dcp_switch_config(lb, fan + 2);
    let mut sim = Simulator::new(13);
    let topo = topology::two_switch_testbed(&mut sim, cfg, fan, 100.0, &[100.0; 2], US, US);
    let cross0 = fan; // first post-host port on s1
    let plan = FaultPlan::new(0xa2)
        .at(100 * US, FaultEvent::LinkDown { sw: topo.leaves[0], port: cross0 })
        .at(link_up, FaultEvent::LinkUp { sw: topo.leaves[0], port: cross0 })
        .sorted();
    FaultEngine::install(&mut sim, plan);
    // Four flows across two cables, so ECMP cannot get lucky and hash
    // every flow (in both directions) onto the surviving cable.
    let msgs = 4u64;
    for i in 0..fan {
        let flow = FlowId(i as u32 + 1);
        let (tx, rx) = endpoint_pair(
            TransportKind::Dcp,
            CcKind::None,
            flow,
            topo.hosts[i],
            topo.hosts[fan + i],
        );
        sim.install_endpoint(topo.hosts[i], flow, tx);
        sim.install_endpoint(topo.hosts[fan + i], flow, rx);
        for m in 0..msgs {
            sim.post(
                topo.hosts[i],
                flow,
                m,
                WorkReqOp::Write { remote_addr: 0x10_0000, rkey: 1 },
                256 * 1024,
            );
        }
    }
    let mut last_fct = 0;
    let mut done = 0u64;
    while sim.step().is_some() {
        sim.for_each_completion(|c| {
            if c.kind == CompletionKind::RecvComplete {
                done += 1;
                last_fct = last_fct.max(c.at);
            }
        });
        assert!(sim.now() < 2_000 * MS, "{lb:?}: fabric failed to drain");
    }
    let cons = sim.check_conservation(true);
    assert!(cons.is_ok(), "{lb:?}: strict conservation violated: {:?}", cons.violations);
    assert_eq!(done, fan as u64 * msgs, "{lb:?}: every message must complete");
    (last_fct, done)
}

#[test]
fn adaptive_routing_routes_around_a_downed_cross_link_that_blackholes_ecmp() {
    let link_up = 50 * MS;
    let (ar_fct, _) = run_route_around(LoadBalance::AdaptiveRouting, link_up);
    let (ecmp_fct, _) = run_route_around(LoadBalance::Ecmp, link_up);
    // Adaptive routing steers new and retransmitted packets onto the
    // surviving uplink (the dead port's queue only grows, so it always
    // loses the least-loaded comparison) and finishes long before the
    // repair; static ECMP keeps hashing at least one flow onto the dead
    // uplink and cannot finish until the link returns.
    assert!(
        ar_fct < link_up,
        "adaptive routing should finish before the repair (finished at {ar_fct} ns)"
    );
    assert!(
        ecmp_fct > link_up,
        "ECMP should be blackholed until the repair (finished at {ecmp_fct} ns)"
    );
}
