//! No-op derive macros backing the vendored `serde` stub: they accept the
//! same attribute grammar (`#[serde(...)]` is declared so annotated types
//! keep compiling) and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
