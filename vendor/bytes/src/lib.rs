//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset `dcp-rdma::wire` consumes: `BytesMut` as a
//! big-endian append buffer, `Bytes` as a cheaply cloneable view with
//! consuming big-endian getters. The real crate's `Buf`/`BufMut` traits are
//! provided as markers so `use bytes::{Buf, BufMut}` keeps compiling; the
//! methods live inherently on the concrete types.

use std::sync::Arc;

/// Marker stand-in for `bytes::Buf` (methods are inherent on [`Bytes`]).
pub trait Buf {}

/// Marker stand-in for `bytes::BufMut` (methods are inherent on
/// [`BytesMut`]).
pub trait BufMut {}

/// Immutable, cheaply cloneable byte view. Consuming getters advance the
/// view's start, mirroring `bytes::Buf`.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Buf for Bytes {}

impl Bytes {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Bytes left to consume (identical to `len` for this stub).
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// Sub-view relative to the current window, without copying.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underrun");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }

    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    pub fn copy_to_slice(&mut self, dest: &mut [u8]) {
        let src = self.take(dest.len());
        dest.copy_from_slice(src);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable append-only buffer with big-endian putters, mirroring
/// `bytes::BytesMut` + `BufMut`.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BufMut for BytesMut {}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(0xab);
        m.put_u16(0x1234);
        m.put_u32(0xdead_beef);
        m.put_u64(0x0102_0304_0506_0708);
        m.put_slice(&[1, 2, 3]);
        let b = m.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        let mut r = b.clone();
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        // The original view is unaffected by the cursor's consumption.
        assert_eq!(b.len(), 18);
    }

    #[test]
    fn slice_is_relative_to_view() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(s2.as_slice(), &[3]);
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u16();
    }
}
