//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's micro-benchmarks use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, throughput annotation) with a simple calibrated
//! wall-clock measurement: warm up, pick an iteration count that fills the
//! measurement window, report mean ns/iteration and derived throughput.
//! No statistics, plots or HTML — swap the real crate back in via the
//! workspace `Cargo.toml` when a registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: scales the reported rate per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stub runs one setup
/// per measured call regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Per-invocation measurement driver.
pub struct Bencher {
    /// Total time and iterations of the final measurement pass.
    elapsed: Duration,
    iters: u64,
    measure_window: Duration,
}

impl Bencher {
    /// Measures `routine` by calling it in a calibrated loop.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: find an iteration count filling the window.
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let d = t.elapsed();
            if d >= self.measure_window || n >= 1 << 30 {
                self.elapsed = d;
                self.iters = n;
                return;
            }
            let grow = if d.is_zero() {
                100
            } else {
                ((self.measure_window.as_nanos() / d.as_nanos().max(1)) as u64 + 1).clamp(2, 100)
            };
            n = n.saturating_mul(grow);
        }
    }

    /// Measures `routine` with per-call setup excluded from timing.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let mut n: u64 = 1;
        loop {
            let mut measured = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                measured += t.elapsed();
            }
            if measured >= self.measure_window || n >= 1 << 30 {
                self.elapsed = measured;
                self.iters = n;
                return;
            }
            let grow = if measured.is_zero() {
                100
            } else {
                ((self.measure_window.as_nanos() / measured.as_nanos().max(1)) as u64 + 1)
                    .clamp(2, 100)
            };
            n = n.saturating_mul(grow);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample count is meaningless for the stub's single calibrated pass;
    /// accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
            measure_window: self.criterion.measure_window,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
            measure_window: self.criterion.measure_window,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) if ns_per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", e as f64 * 1e9 / ns_per_iter)
            }
            Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / ns_per_iter)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>14.1} ns/iter{rate}   ({} iters)",
            format!("{}/{}", self.name, id),
            ns_per_iter,
            b.iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measure_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // DCP_BENCH_MS shrinks the window for smoke runs (e.g. CI).
        let ms = std::env::var("DCP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200u64);
        Criterion { measure_window: Duration::from_millis(ms) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g = BenchmarkGroup { criterion: self, name: "criterion".into(), throughput: None };
        g.bench_function(id, f);
        self
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions into
/// one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("DCP_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(1));
        let mut acc = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
