//! Offline stand-in for `crossbeam`.
//!
//! The sweep executor in `dcp-bench` only needs scoped threads. Since Rust
//! 1.63 the standard library provides them, so this shim exposes
//! `crossbeam::thread::scope` on top of `std::thread::scope`. One API
//! divergence from the real crate, documented here because only this
//! workspace compiles against the shim: `Scope::spawn` takes a plain
//! `FnOnce()` closure instead of `FnOnce(&Scope)` (nested spawning is not
//! used). Restore the real crate via the workspace `Cargo.toml` when a
//! registry is reachable.

pub mod thread {
    /// Result type of [`scope`]: `Err` carries a child thread's panic
    /// payload, as in real crossbeam.
    pub type Result<T> = std::thread::Result<T>;

    /// Scope handle passed to the [`scope`] closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it may borrow from the enclosing
        /// environment and is joined before [`scope`] returns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(f)
        }
    }

    /// Creates a scope for spawning borrowing threads. All spawned threads
    /// are joined when the closure returns; a child panic surfaces as
    /// `Err`, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope resurfaces unjoined child panics by panicking
        // itself; catching around the whole scope preserves crossbeam's
        // Err-returning contract for both parent and child panics.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move || x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn child_panic_is_err() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|| panic!("boom"));
            let _ = h.join();
        });
        // The panic is observed via the child handle; scope itself returns
        // Ok because the parent closure absorbed it.
        assert!(r.is_ok());
        let r2 = crate::thread::scope(|_s| panic!("parent"));
        assert!(r2.is_err());
    }
}
