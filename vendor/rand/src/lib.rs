//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the exact API surface it consumes: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, and the `Rng` extension methods `random` / `random_range`
//! / `random_bool`. The generator is xoshiro256** seeded through SplitMix64
//! — a different stream than the real `StdRng` (ChaCha12), which is fine
//! because the simulator only requires *self*-determinism (same seed ⇒ same
//! trace), never a specific stream.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! `Cargo.toml` once a registry is reachable.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators. Only `seed_from_u64` is exercised by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain (the `StandardUniform`
/// distribution of real `rand`). Floats sample from `[0, 1)`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (public-domain algorithm by
    /// Blackman & Vigna), seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(5u32..=5);
            assert_eq!(y, 5);
        }
    }
}
