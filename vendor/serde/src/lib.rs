//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward-
//! looking annotations — no code path serializes through serde (JSON output
//! is hand-rendered). With crates.io unreachable in the build container,
//! this stub supplies the trait names and no-op derives so those
//! annotations keep compiling. Swap the real crate back in via the
//! workspace `Cargo.toml` when a registry is available.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
