//! Offline stand-in for `proptest`.
//!
//! Provides the API subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_shuffle`, integer-range and `Just` strategies, `any::<T>()`,
//! `collection::vec`, `sample::Index`, and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking and no failure persistence:
//! each `#[test]` runs `ProptestConfig::cases` deterministic cases from an
//! RNG seeded by the test's module path + name, and a failing case panics
//! with the assertion message. Swap the real crate back in via the
//! workspace `Cargo.toml` when a registry is reachable.

// Re-exported for macro expansions in crates that don't depend on `rand`.
#[doc(hidden)]
pub use rand;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// A generator of values of type `Value`. The stub's contract is just
    /// deterministic generation from the provided RNG — no shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { s: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { s: self, f }
        }

        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Helper for `prop_oneof!`: erases a strategy's concrete type so
    /// heterogeneous arms can share one `Vec`.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Builds a strategy from a generation closure; the backbone of
    /// `prop_compose!`.
    pub fn fn_strategy<T, F: Fn(&mut StdRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }

    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.s.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            let inner = (self.f)(self.s.generate(rng));
            inner.generate(rng)
        }
    }

    /// Values `prop_shuffle` can permute in place.
    pub trait Shuffleable {
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle(&mut self, rng: &mut StdRng) {
            // Fisher–Yates; modulo bias is irrelevant for test generation.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }

    pub struct Shuffle<S>(S);

    impl<S: Strategy> Strategy for Shuffle<S>
    where
        S::Value: Shuffleable,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            let mut v = self.0.generate(rng);
            v.shuffle(rng);
            v
        }
    }

    /// Uniform choice between boxed arms, as built by `prop_oneof!`.
    pub struct OneOf<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = (rng.next_u64() as usize) % self.arms.len();
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64) - (self.start as u64);
                    self.start + (rng.next_u64() % width) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as u64) - (lo as u64) + 1;
                    if width == 0 {
                        // Full-width u64 range: the raw draw is already uniform.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % width) as $t
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($n:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            crate::sample::Index(rng.next_u64() as usize)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Element-count bound for [`vec`], half-open internally.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *r.start(), end: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let n = self.size.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    /// An index into a collection of yet-unknown size, resolved with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod test_runner {
    /// Subset of `proptest::test_runner::Config`; only `cases` is honored.
    /// `max_global_rejects` exists so `..Config::default()` updates (the
    /// idiomatic real-proptest form) stay meaningful.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// How a single generated case ended, when not a plain success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the runner draws a new case.
        Reject,
        /// A `prop_assert*!` failed; the runner panics with the message.
        Fail(String),
    }

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the test's
    /// full name so every run (and thread count) sees the same cases.
    pub fn rng_for(test_name: &str) -> rand::rngs::StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};

    /// Mirrors the real prelude's `prop` path (`prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs each `#[test] fn name(pat in strategy, ...) { body }` for
/// `ProptestConfig::cases` deterministic cases. `prop_assume!` rejections
/// redraw; `prop_assert*!` failures panic with the case's message.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __done: u32 = 0;
                let mut __rejects: u32 = 0;
                while __done < __cfg.cases {
                    let __vals =
                        ($($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+);
                    // Immediately-invoked closure: gives `prop_assert*!` and
                    // `?` a `Result` frame to early-return through.
                    let __outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ($($pat,)+) = __vals;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __done += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejects += 1;
                            assert!(
                                __rejects < __cfg.max_global_rejects,
                                "proptest: too many prop_assume! rejections"
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __done + 1, msg)
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Defines `fn $name(args...) -> impl Strategy<Value = $ret>` that draws
/// each binding in order and maps them through the body.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |__rng: &mut $crate::rand::rngs::StdRng| -> $ret {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among the listed strategies (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Like `assert!` but fails the current case instead of panicking inline,
/// so it works in helpers returning `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case; the runner draws fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 1u32..10, b in 0u64..=5) -> (u32, u64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u8..7, y in 10usize..=12) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((10..=12).contains(&y), "y out of bounds: {}", y);
        }

        #[test]
        fn composed_and_assume((a, b) in arb_pair(), flip in any::<bool>()) {
            prop_assume!(a != 9);
            prop_assert!((1..9).contains(&a));
            prop_assert_eq!(b.min(5), b);
            let _ = flip;
        }

        #[test]
        fn oneof_vec_shuffle_index(
            tag in prop_oneof![Just(1u32), Just(2), Just(3)],
            v in prop::collection::vec(any::<u8>(), 1..16),
            ix in any::<prop::sample::Index>(),
            shuffled in Just(vec![1u32, 2, 3, 4]).prop_shuffle().prop_map(|v| v),
        ) {
            prop_assert!((1..=3).contains(&tag));
            let _ = v[ix.index(v.len())];
            let mut sorted = shuffled.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
